// Package retry is the client-side half of the control plane's
// backpressure contract: a deterministic exponential backoff whose jitter
// comes from a seeded splitmix64 stream, so a scripted client replays the
// same retry schedule every run. The policy never sleeps — it only
// computes delays; the caller owns the clock.
package retry

import (
	"fmt"
	"time"
)

// Policy shapes a backoff schedule. The zero value is usable: 100ms base,
// doubling, 30s cap, 20% jitter, seed 0.
type Policy struct {
	// Base is the pre-jitter first delay; 0 means DefaultBase.
	Base time.Duration
	// Max caps the pre-jitter delay; 0 means DefaultMax.
	Max time.Duration
	// Factor is the per-attempt multiplier; 0 means DefaultFactor.
	Factor float64
	// Jitter spreads each delay uniformly over [delay*(1-Jitter), delay];
	// backoff without jitter synchronizes retry storms. 0 keeps
	// DefaultJitter; negative disables jitter entirely.
	Jitter float64
	// Seed drives the jitter stream.
	Seed int64
}

// Defaults for Policy zero fields.
const (
	DefaultBase   = 100 * time.Millisecond
	DefaultMax    = 30 * time.Second
	DefaultFactor = 2.0
	DefaultJitter = 0.2
)

// Backoff is one client's retry state. Not safe for concurrent use.
type Backoff struct {
	p       Policy
	attempt int
	rng     uint64
}

// New validates the policy and builds a fresh schedule.
func New(p Policy) (*Backoff, error) {
	if p.Base == 0 {
		p.Base = DefaultBase
	}
	if p.Max == 0 {
		p.Max = DefaultMax
	}
	if p.Factor == 0 { //coda:ordered-ok zero-value detection for defaulting, not an accumulated comparison
		p.Factor = DefaultFactor
	}
	if p.Jitter == 0 { //coda:ordered-ok zero-value detection for defaulting, not an accumulated comparison
		p.Jitter = DefaultJitter
	}
	if p.Base < 0 || p.Max < p.Base {
		return nil, fmt.Errorf("retry: base %v and max %v are inconsistent", p.Base, p.Max)
	}
	if p.Factor < 1 {
		return nil, fmt.Errorf("retry: factor %g would shrink delays", p.Factor)
	}
	if p.Jitter >= 1 {
		return nil, fmt.Errorf("retry: jitter %g must be below 1", p.Jitter)
	}
	return &Backoff{p: p, rng: splitmix64(uint64(p.Seed) + 0x9e3779b97f4a7c15)}, nil
}

// Next returns the delay before the next attempt. retryAfter is the
// server's Retry-After hint (0 when absent): the returned delay never
// undercuts it — the server knows how congested it is better than any
// client-side guess.
func (b *Backoff) Next(retryAfter time.Duration) time.Duration {
	d := float64(b.p.Base)
	for i := 0; i < b.attempt; i++ {
		d *= b.p.Factor
		if d >= float64(b.p.Max) {
			d = float64(b.p.Max)
			break
		}
	}
	b.attempt++
	delay := time.Duration(d)
	if b.p.Jitter > 0 {
		b.rng = splitmix64(b.rng)
		delay = time.Duration(d * (1 - b.p.Jitter*unit(b.rng)))
	}
	if delay < retryAfter {
		delay = retryAfter
	}
	return delay
}

// Attempt reports how many delays have been handed out.
func (b *Backoff) Attempt() int { return b.attempt }

// Reset rewinds the attempt counter after a success; the jitter stream
// keeps advancing so consecutive bursts stay decorrelated.
func (b *Backoff) Reset() { b.attempt = 0 }

// splitmix64 is the SplitMix64 mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }
