package ctl

import (
	"testing"
	"time"
)

// TestKillRecoverEquivalence is the control plane's headline metamorphic
// property and the CI serve-race target: for each seed, a scripted request
// stream (with drop/dup/swap chaos and periodic cancels) served by a
// machine that is killed at three seeded batch boundaries and recovered
// from checkpoint + WAL suffix must finish byte-identical to the same
// stream served uninterrupted. It runs the full CODA scheduler so every
// checkpointed subsystem is under the knife.
func TestKillRecoverEquivalence(t *testing.T) {
	opts := testOptions()
	for _, seed := range []int64{1, 2, 3} {
		drill := DrillConfig{
			Seed:            seed,
			Chaos:           RequestChaos{DropProb: 0.1, DupProb: 0.1, SwapProb: 0.15},
			Kills:           3,
			CancelEvery:     5,
			Tick:            time.Minute,
			CheckpointEvery: 7,
		}
		rep, err := RunKillDrill(opts, codaFactory(opts), testTrace(24), drill)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Diff != "" {
			t.Fatalf("seed %d: killed run diverged from baseline at %s", seed, rep.Diff)
		}
		if rep.Kills != 3 {
			t.Fatalf("seed %d: survived %d kills, want 3", seed, rep.Kills)
		}
		if rep.Replayed == 0 {
			t.Fatalf("seed %d: recovery never replayed a WAL record — the drill is not exercising replay", seed)
		}
	}
}

// TestKillDrillNoCheckpoints proves recovery works from the WAL alone:
// with no checkpoint cadence, every kill replays the whole log from
// genesis and must still converge.
func TestKillDrillNoCheckpoints(t *testing.T) {
	opts := testOptions()
	drill := DrillConfig{
		Seed:  9,
		Kills: 2,
		Tick:  time.Minute,
	}
	rep, err := RunKillDrill(opts, fifoFactory, testTrace(12), drill)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diff != "" {
		t.Fatalf("full-log replay diverged at %s", rep.Diff)
	}
	if rep.Replayed == 0 {
		t.Fatal("no records replayed despite kills with an empty checkpoint store")
	}
}

// TestKillDrillZeroKillsIsIdentity sanity-checks the harness itself: with
// no kills the two runs are literally the same procedure and must match.
func TestKillDrillZeroKillsIsIdentity(t *testing.T) {
	opts := testOptions()
	rep, err := RunKillDrill(opts, fifoFactory, testTrace(6), DrillConfig{Seed: 4, Tick: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diff != "" {
		t.Fatalf("zero-kill drill diverged at %s", rep.Diff)
	}
	if rep.Kills != 0 || rep.Replayed != 0 {
		t.Fatalf("zero-kill drill reported kills=%d replayed=%d", rep.Kills, rep.Replayed)
	}
}

// TestScriptDeterminism: same inputs, same script — the foundation every
// drill comparison stands on.
func TestScriptDeterminism(t *testing.T) {
	chaos := RequestChaos{DropProb: 0.2, DupProb: 0.2, SwapProb: 0.2}
	a, err := ScriptFromJobs(testTrace(20), time.Minute, 5, chaos, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ScriptFromJobs(testTrace(20), time.Minute, 5, chaos, 4)
	if len(a) != len(b) {
		t.Fatalf("script lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Req.Op != b[i].Req.Op || a[i].Req.JobID != b[i].Req.JobID {
			t.Fatalf("step %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := ScriptFromJobs(testTrace(20), time.Minute, 6, chaos, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Req.Op != c[i].Req.Op {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical perturbed script")
	}
}

func TestScriptChaosShapes(t *testing.T) {
	jobs := testTrace(30)
	plain, err := ScriptFromJobs(jobs, time.Minute, 1, RequestChaos{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(jobs) {
		t.Fatalf("chaos-free script has %d steps, want %d submits", len(plain), len(jobs))
	}
	dropped, err := ScriptFromJobs(jobs, time.Minute, 1, RequestChaos{DropProb: 1}, 0)
	if err == nil && len(dropped) != 0 {
		t.Fatalf("DropProb=1 left %d steps", len(dropped))
	}
	duped, err := ScriptFromJobs(jobs, time.Minute, 1, RequestChaos{DupProb: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(duped) != 2*len(jobs) {
		t.Fatalf("DupProb=1 produced %d steps, want %d", len(duped), 2*len(jobs))
	}
	withCancels, err := ScriptFromJobs(jobs, time.Minute, 1, RequestChaos{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	cancels := 0
	for _, st := range withCancels {
		if st.Req.Op == OpCancel {
			cancels++
		}
	}
	if cancels != len(jobs)/3 {
		t.Fatalf("%d cancels for cancelEvery=3 over %d submits, want %d", cancels, len(jobs), len(jobs)/3)
	}
}
