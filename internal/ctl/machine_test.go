package ctl

import (
	"strings"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/ctl/wal"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/sim"
)

func testOptions() sim.Options {
	opts := sim.DefaultOptions()
	opts.Cluster = cluster.Config{
		Nodes: 4, CoresPerNode: 28, GPUsPerNode: 4,
		BandwidthGBs: 120, PCIeGBs: 16,
	}
	opts.SampleInterval = time.Minute
	opts.Invariants = true
	return opts
}

func fifoFactory() (sched.Scheduler, error) { return sched.NewFIFO(), nil }

func codaFactory(opts sim.Options) func() (sched.Scheduler, error) {
	return func() (sched.Scheduler, error) {
		return core.New(core.DefaultConfig(), opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	}
}

// testTrace builds a mixed client workload: CPU jobs, GPU training across
// categories, and one bandwidth hog, arriving over roughly n*7 minutes.
func testTrace(n int) []*job.Job {
	models := []string{"resnet50", "transformer", "deepspeech", "vgg16"}
	cats := []job.Category{job.CategoryCV, job.CategoryNLP, job.CategorySpeech, job.CategoryCV}
	var jobs []*job.Job
	for i := 0; i < n; i++ {
		arrival := time.Duration(i) * 7 * time.Minute
		switch i % 3 {
		case 0:
			jobs = append(jobs, &job.Job{
				ID: job.ID(i + 1), Kind: job.KindCPU, Tenant: 2,
				Request: job.Request{CPUCores: 3 + i%5, Nodes: 1},
				Arrival: arrival, Work: time.Duration(40+9*(i%7)) * time.Minute,
				Bandwidth: 0.3 * float64(3+i%5),
			})
		case 1:
			jobs = append(jobs, &job.Job{
				ID: job.ID(i + 1), Kind: job.KindGPUTraining, Tenant: 1,
				Category: cats[i%4], Model: models[i%4],
				Request: job.Request{CPUCores: 3 + i%4, GPUs: 1 + i%2, Nodes: 1},
				Arrival: arrival, Work: time.Duration(60+13*(i%5)) * time.Minute,
			})
		default:
			jobs = append(jobs, &job.Job{
				ID: job.ID(i + 1), Kind: job.KindBandwidthHog, Tenant: 3,
				Request: job.Request{CPUCores: 4, Nodes: 1},
				Arrival: arrival, Work: time.Duration(50+11*(i%3)) * time.Minute,
				Bandwidth: 60,
			})
		}
	}
	return jobs
}

func memConfig(opts sim.Options) Config {
	return Config{
		Options:      opts,
		NewScheduler: fifoFactory,
		Log:          wal.NewMemLog(),
		Store:        wal.NewMemStore(),
	}
}

func TestMachineSubmitRunsJob(t *testing.T) {
	m, err := NewMachine(memConfig(testOptions()))
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	spec := &JobSpec{Kind: "cpu", Tenant: 1, CPUCores: 4, WorkSeconds: 600}
	resp, err := m.Apply(0, Request{Op: OpSubmit, Job: spec})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if resp.Err != "" || resp.JobID != 1 || resp.Seq != 1 {
		t.Fatalf("submit response %+v, want jobId=1 seq=1", resp)
	}
	st := m.JobStatus(1)
	if st.Phase != sim.PhaseRunning {
		t.Fatalf("job phase %q right after submit, want running", st.Phase)
	}
	if len(st.Nodes) != 1 {
		t.Fatalf("running job placement %v, want one node", st.Nodes)
	}
	if err := m.AdvanceTo(time.Hour); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	if got := m.JobStatus(1).Phase; got != sim.PhaseCompleted {
		t.Fatalf("job phase %q after its work, want completed", got)
	}
	if m.JobStatus(99).Phase != sim.PhaseUnknown {
		t.Fatal("unknown job did not report PhaseUnknown")
	}

	c := m.Counters()
	if c.ServeAccepted != 1 || c.WALFsyncs != 1 {
		t.Fatalf("counters %+v, want 1 accepted / 1 fsync", c)
	}
}

func TestMachineBatchIsOneFsync(t *testing.T) {
	m, err := NewMachine(memConfig(testOptions()))
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	reqs := []Request{
		{Op: OpSubmit, Job: &JobSpec{Kind: "cpu", Tenant: 1, CPUCores: 2, WorkSeconds: 60}},
		{Op: OpSubmit, Job: &JobSpec{Kind: "cpu", Tenant: 1, CPUCores: 2, WorkSeconds: 60}},
		{Op: OpCancel, JobID: 1},
	}
	resps, err := m.ApplyBatch(time.Minute, reqs)
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if resps[0].JobID != 1 || resps[1].JobID != 2 {
		t.Fatalf("IDs %d,%d — want sequential 1,2", resps[0].JobID, resps[1].JobID)
	}
	if resps[2].Err != "" {
		t.Fatalf("in-batch cancel of job 1 failed: %s", resps[2].Err)
	}
	c := m.Counters()
	if c.ServeAccepted != 3 || c.WALFsyncs != 1 {
		t.Fatalf("counters accepted=%d fsyncs=%d, want 3/1 (one sync per batch)", c.ServeAccepted, c.WALFsyncs)
	}
	if got := m.JobStatus(1).Phase; got != sim.PhaseCancelled {
		t.Fatalf("cancelled job phase %q", got)
	}
}

func TestMachineSemanticRejectionsAreResponses(t *testing.T) {
	m, err := NewMachine(memConfig(testOptions()))
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	cases := []struct {
		name    string
		req     Request
		wantSub string
	}{
		{"cancel unknown job", Request{Op: OpCancel, JobID: 42}, "not pending"},
		{"join an up node", Request{Op: OpNodeJoin, Node: 1}, "not down"},
		{"undrain an up node", Request{Op: OpNodeUndrain, Node: 1}, "not draining"},
		{"node out of range", Request{Op: OpNodeDrain, Node: 99}, "node"},
		{"bad job kind", Request{Op: OpSubmit, Job: &JobSpec{Kind: "quantum", Tenant: 1, CPUCores: 1, WorkSeconds: 1}}, "unknown job kind"},
	}
	for i, tc := range cases {
		resp, err := m.Apply(0, tc.req)
		if err != nil {
			t.Fatalf("%s: fatal error %v (want a semantic rejection)", tc.name, err)
		}
		if resp.Err == "" || !strings.Contains(resp.Err, tc.wantSub) {
			t.Fatalf("%s: response error %q does not mention %q", tc.name, resp.Err, tc.wantSub)
		}
		if resp.Seq != uint64(i+1) {
			t.Fatalf("%s: seq %d, want %d (rejections still occupy WAL slots)", tc.name, resp.Seq, i+1)
		}
	}
	// A rejected submit must not burn an ID: the next good submit gets 1.
	resp, err := m.Apply(0, Request{Op: OpSubmit, Job: &JobSpec{Kind: "cpu", Tenant: 1, CPUCores: 1, WorkSeconds: 60}})
	if err != nil || resp.JobID != 1 {
		t.Fatalf("post-rejection submit got ID %d (err %v), want 1", resp.JobID, err)
	}
}

func TestMachineNodeLifecycle(t *testing.T) {
	m, err := NewMachine(memConfig(testOptions()))
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	steps := []struct {
		req       Request
		wantState string
	}{
		{Request{Op: OpNodeDrain, Node: 2}, "draining"},
		{Request{Op: OpNodeUndrain, Node: 2}, "up"},
		{Request{Op: OpNodeLeave, Node: 2}, "down"},
		{Request{Op: OpNodeJoin, Node: 2}, "up"},
	}
	for i, st := range steps {
		resp, err := m.Apply(time.Duration(i)*time.Minute, st.req)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if resp.Err != "" {
			t.Fatalf("step %d (%s): rejected: %s", i, st.req.Op, resp.Err)
		}
		nodes := m.NodeStatuses()
		if len(nodes) != 4 {
			t.Fatalf("step %d: %d nodes, want 4", i, len(nodes))
		}
		if got := strings.ToLower(nodes[2].State); !strings.Contains(got, st.wantState) {
			t.Fatalf("step %d: node 2 state %q, want %q", i, nodes[2].State, st.wantState)
		}
	}
	res, err := m.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := res.Faults.Sane(); err != nil {
		t.Fatalf("counters after node lifecycle: %v", err)
	}
	if res.Faults.NodeCrashes != 1 || res.Faults.NodeRecoveries != 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 1/1", res.Faults.NodeCrashes, res.Faults.NodeRecoveries)
	}
}

func TestResumeColdStart(t *testing.T) {
	cfg := memConfig(testOptions())
	m, recovered, err := Resume(cfg)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if recovered {
		t.Fatal("empty log + empty store reported a recovery")
	}
	if c := m.Counters(); c.ServeRecoveries != 0 {
		t.Fatalf("cold start counted %d recoveries", c.ServeRecoveries)
	}
}

func TestResumeRejectsCorruptWAL(t *testing.T) {
	log := wal.NewMemLog()
	cfg := memConfig(testOptions())
	cfg.Log = log
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Apply(0, Request{Op: OpCancel, JobID: int64(i + 1)}); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	if err := log.Corrupt(80); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	if _, _, err := Resume(cfg); err == nil {
		t.Fatal("Resume accepted a corrupt WAL")
	}
}

func TestResumeRejectsTruncatedWAL(t *testing.T) {
	log := wal.NewMemLog()
	cfg := memConfig(testOptions())
	cfg.Log = log
	cfg.CheckpointEvery = 1
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if _, err := m.Apply(0, Request{Op: OpCancel, JobID: 1}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// The checkpoint says 1 record applied; an empty WAL contradicts it.
	if err := log.Truncate(0); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	_, _, err = Resume(cfg)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("Resume(%v) did not refuse the truncated log", err)
	}
}

func TestApplyBatchClampsTimeBackwards(t *testing.T) {
	m, err := NewMachine(memConfig(testOptions()))
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if err := m.AdvanceTo(10 * time.Minute); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	// A batch stamped in the past must be clamped, not travel back in time.
	resp, err := m.Apply(time.Minute, Request{Op: OpSubmit, Job: &JobSpec{Kind: "cpu", Tenant: 1, CPUCores: 1, WorkSeconds: 60}})
	if err != nil || resp.Err != "" {
		t.Fatalf("Apply: %v / %s", err, resp.Err)
	}
	if m.Now() != 10*time.Minute {
		t.Fatalf("machine time %v moved backwards", m.Now())
	}
}
