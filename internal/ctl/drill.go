package ctl

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/coda-repro/coda/internal/ctl/wal"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/sim"
)

// Step is one scripted control-plane request at a virtual instant. Scripts
// are the drill harness's replacement for live HTTP traffic: a fixed,
// seed-reproducible request stream both the baseline and the killed run
// execute identically.
type Step struct {
	At  time.Duration
	Req Request
}

// RequestChaos perturbs a client request stream the way a flaky network
// does: requests vanish (client gave up), arrive twice (client retried a
// request that had in fact landed), or swap order with a neighbor. The
// perturbation is applied while building the script — before either run —
// so it tests that a messy stream is still served deterministically, not
// that the server repairs the mess.
type RequestChaos struct {
	// DropProb is the per-submit probability the request never arrives.
	DropProb float64
	// DupProb is the per-submit probability the request arrives twice (a
	// second admission with a fresh ID — the WAL has no dedup layer).
	DupProb float64
	// SwapProb is the per-adjacent-pair probability the two requests trade
	// places in the stream.
	SwapProb float64
}

// drillRNG is a tiny deterministic splitmix64 stream for script building.
type drillRNG uint64

func (r *drillRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	x := uint64(*r)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit returns a uniform float64 in [0, 1).
func (r *drillRNG) unit() float64 { return float64(r.next()>>11) / (1 << 53) }

// specFromJob maps an engine job back to its client-side spec (the inverse
// of JobSpec.ToJob, minus the server-assigned ID).
func specFromJob(j *job.Job) (*JobSpec, error) {
	spec := &JobSpec{
		Tenant:       int(j.Tenant),
		Model:        j.Model,
		BatchSize:    j.BatchSize,
		CPUCores:     j.Request.CPUCores,
		GPUs:         j.Request.GPUs,
		Nodes:        j.Request.Nodes,
		WorkSeconds:  j.Work.Seconds(),
		BandwidthGBs: j.Bandwidth,
	}
	switch j.Kind {
	case job.KindCPU:
		spec.Kind = "cpu"
	case job.KindGPUTraining:
		spec.Kind = "gpu-training"
	case job.KindBandwidthHog:
		spec.Kind = "bandwidth-hog"
	default:
		return nil, fmt.Errorf("ctl: job %d has unknown kind %v", j.ID, j.Kind)
	}
	switch j.Category {
	case job.CategoryNone:
		spec.Category = ""
	case job.CategoryCV:
		spec.Category = "cv"
	case job.CategoryNLP:
		spec.Category = "nlp"
	case job.CategorySpeech:
		spec.Category = "speech"
	default:
		return nil, fmt.Errorf("ctl: job %d has unknown category %v", j.ID, j.Category)
	}
	return spec, nil
}

// ScriptFromJobs turns a generated trace into a control-plane script:
// submits at each job's arrival quantized up to the tick cadence, chaos
// perturbation (drop/dup/swap) applied by seed, and — when cancelEvery > 0
// — a cancel after every cancelEvery-th surviving submit, targeting the ID
// the server will deterministically have assigned to it. Job IDs inside
// the trace are ignored: the server owns ID assignment.
func ScriptFromJobs(jobs []*job.Job, tick time.Duration, seed int64, chaos RequestChaos, cancelEvery int) ([]Step, error) {
	if tick <= 0 {
		return nil, fmt.Errorf("ctl: script tick %v must be positive", tick)
	}
	rng := drillRNG(uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)

	ordered := append([]*job.Job(nil), jobs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })

	var steps []Step
	for _, j := range ordered {
		spec, err := specFromJob(j)
		if err != nil {
			return nil, err
		}
		at := quantizeUp(j.Arrival, tick)
		if rng.unit() < chaos.DropProb {
			continue
		}
		steps = append(steps, Step{At: at, Req: Request{Op: OpSubmit, Job: spec}})
		if rng.unit() < chaos.DupProb {
			dup := *spec
			steps = append(steps, Step{At: at + tick, Req: Request{Op: OpSubmit, Job: &dup}})
		}
	}
	// Swap adjacent requests in stream order, keeping the time slots: the
	// payloads trade places, like two packets reordered in flight.
	for i := 0; i+1 < len(steps); i++ {
		if rng.unit() < chaos.SwapProb {
			steps[i].Req, steps[i+1].Req = steps[i+1].Req, steps[i].Req
		}
	}
	// Cancels ride one tick behind their target. The k-th submit in the
	// final stream gets ID k, so targets are predictable without running
	// anything. Cancels of already-finished jobs are deterministic
	// rejections — still WAL records, still replayed identically.
	if cancelEvery > 0 {
		var cancels []Step
		submits := 0
		for _, st := range steps {
			if st.Req.Op != OpSubmit {
				continue
			}
			submits++
			if submits%cancelEvery == 0 {
				cancels = append(cancels, Step{
					At:  st.At + tick,
					Req: Request{Op: OpCancel, JobID: int64(submits)},
				})
			}
		}
		steps = append(steps, cancels...)
	}
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	return steps, nil
}

func quantizeUp(t, tick time.Duration) time.Duration {
	if t <= 0 {
		return 0
	}
	return ((t + tick - 1) / tick) * tick
}

// DrillConfig shapes one kill-and-recover drill.
type DrillConfig struct {
	// Seed drives script perturbation and kill-point placement.
	Seed int64
	// Chaos perturbs the request stream (both runs see the same stream).
	Chaos RequestChaos
	// Kills is how many times the killed run dies and recovers; kill points
	// are distinct seeded batch ordinals.
	Kills int
	// CancelEvery inserts a cancel after every Nth submit; 0 disables.
	CancelEvery int
	// Tick is the admission batching cadence.
	Tick time.Duration
	// CheckpointEvery is the machine checkpoint cadence in applied records;
	// 0 means recovery replays the whole WAL from genesis.
	CheckpointEvery int
	// Horizon is the virtual end time both runs are drained to before
	// results are compared; 0 means one hour past the last scripted step.
	Horizon time.Duration
}

// DrillReport is the evidence a drill leaves behind.
type DrillReport struct {
	// Kills is how many kill-and-recover cycles the killed run survived.
	Kills int
	// Records is the total WAL records both runs applied.
	Records int
	// Batches is how many admission batches the script produced.
	Batches int
	// Replayed is how many WAL records recovery re-applied in total.
	Replayed int
	// Diff is empty when the killed run's dump matched the baseline's;
	// otherwise it pinpoints the first divergent line.
	Diff string
	// Dump is the baseline run's result dump (for goldens/debugging).
	Dump string
}

// RunKillDrill is the control plane's determinism proof: it runs one
// scripted request stream twice — once uninterrupted, once killed at
// cfg.Kills seeded batch boundaries and recovered from checkpoint + WAL
// suffix each time — and demands the two final sim.DumpResult dumps be
// byte-identical. Any divergence (a job scheduled differently, a counter
// off by one, a float a bit different) is reported as the first differing
// line. The killed run's merged fault counters must also pass Sane().
func RunKillDrill(opts sim.Options, newSched func() (sched.Scheduler, error), jobs []*job.Job, cfg DrillConfig) (*DrillReport, error) {
	if cfg.Tick <= 0 {
		cfg.Tick = time.Minute
	}
	if cfg.Kills < 0 {
		return nil, fmt.Errorf("ctl: drill wants %d kills", cfg.Kills)
	}
	script, err := ScriptFromJobs(jobs, cfg.Tick, cfg.Seed, cfg.Chaos, cfg.CancelEvery)
	if err != nil {
		return nil, err
	}
	if len(script) == 0 {
		return nil, errors.New("ctl: drill script is empty (all requests dropped?)")
	}
	batches := batchScript(script)
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = batches[len(batches)-1].at + time.Hour
	}

	// Baseline: one machine, no interruptions.
	baseCfg := Config{
		Options:         opts,
		NewScheduler:    newSched,
		Log:             wal.NewMemLog(),
		Store:           wal.NewMemStore(),
		CheckpointEvery: cfg.CheckpointEvery,
	}
	base, err := NewMachine(baseCfg)
	if err != nil {
		return nil, fmt.Errorf("ctl: drill baseline: %w", err)
	}
	for _, b := range batches {
		if _, err := base.ApplyBatch(b.at, b.reqs); err != nil {
			return nil, fmt.Errorf("ctl: drill baseline batch at %v: %w", b.at, err)
		}
	}
	if err := base.AdvanceTo(horizon); err != nil {
		return nil, fmt.Errorf("ctl: drill baseline drain: %w", err)
	}
	baseRes, err := base.Finish()
	if err != nil {
		return nil, fmt.Errorf("ctl: drill baseline finish: %w", err)
	}
	want := sim.DumpResult(baseRes)

	// Killed run: same script, same stores throughout, fresh machine after
	// every kill — recovery is checkpoint + WAL suffix, nothing else.
	killAfter := pickKillPoints(cfg.Seed, cfg.Kills, len(batches))
	killedCfg := Config{
		Options:         opts,
		NewScheduler:    newSched,
		Log:             wal.NewMemLog(),
		Store:           wal.NewMemStore(),
		CheckpointEvery: cfg.CheckpointEvery,
	}
	m, err := NewMachine(killedCfg)
	if err != nil {
		return nil, fmt.Errorf("ctl: drill killed run: %w", err)
	}
	report := &DrillReport{Records: len(script), Batches: len(batches), Dump: want}
	for i, b := range batches {
		if _, err := m.ApplyBatch(b.at, b.reqs); err != nil {
			return nil, fmt.Errorf("ctl: drill killed batch at %v: %w", b.at, err)
		}
		if killAfter[i] {
			// The process dies here: the machine is dropped on the floor
			// (no Finish, no flush) and rebuilt from durable state alone.
			m, _, err = Resume(killedCfg)
			if err != nil {
				return nil, fmt.Errorf("ctl: drill recovery after batch %d: %w", i, err)
			}
			report.Kills++
		}
	}
	report.Replayed = m.Counters().ServeReplayed
	if err := m.AdvanceTo(horizon); err != nil {
		return nil, fmt.Errorf("ctl: drill killed drain: %w", err)
	}
	killedRes, err := m.Finish()
	if err != nil {
		return nil, fmt.Errorf("ctl: drill killed finish: %w", err)
	}
	if err := killedRes.Faults.Sane(); err != nil {
		return nil, fmt.Errorf("ctl: drill killed run counters: %w", err)
	}
	got := sim.DumpResult(killedRes)
	if got != want {
		report.Diff = sim.FirstDiff(want, got)
	}
	return report, nil
}

// batch groups script steps sharing one virtual instant: one WAL append,
// one fsync, one canonical order.
type batch struct {
	at   time.Duration
	reqs []Request
}

func batchScript(script []Step) []batch {
	var out []batch
	for _, st := range script {
		if n := len(out); n > 0 && out[n-1].at == st.At {
			out[n-1].reqs = append(out[n-1].reqs, st.Req)
			continue
		}
		out = append(out, batch{at: st.At, reqs: []Request{st.Req}})
	}
	return out
}

// pickKillPoints seeds n distinct batch ordinals to die after. With fewer
// batches than requested kills, every batch boundary kills.
func pickKillPoints(seed int64, n, batches int) map[int]bool {
	points := make(map[int]bool, n)
	if batches <= 0 || n <= 0 {
		return points
	}
	rng := drillRNG(uint64(seed) ^ 0xd1b54a32d192ed03 + 1)
	if n >= batches {
		for i := 0; i < batches; i++ {
			points[i] = true
		}
		return points
	}
	for len(points) < n {
		points[int(rng.next()%uint64(batches))] = true
	}
	return points
}
