package cluster

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coda-repro/coda/internal/job"
)

func smallConfig() Config {
	return Config{Nodes: 4, CoresPerNode: 8, GPUsPerNode: 2, BandwidthGBs: 100, PCIeGBs: 16}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"default ok", func(c *Config) {}, false},
		{"zero nodes", func(c *Config) { c.Nodes = 0 }, true},
		{"zero cores", func(c *Config) { c.CoresPerNode = 0 }, true},
		{"negative gpus", func(c *Config) { c.GPUsPerNode = -1 }, true},
		{"zero gpus ok (cpu-only cluster)", func(c *Config) { c.GPUsPerNode = 0 }, false},
		{"zero bandwidth", func(c *Config) { c.BandwidthGBs = 0 }, true},
		{"zero pcie", func(c *Config) { c.PCIeGBs = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewDefault(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatalf("New() error: %v", err)
	}
	if got := c.Size(); got != DefaultNodes {
		t.Errorf("Size() = %d, want %d", got, DefaultNodes)
	}
	if got := c.TotalGPUs(); got != DefaultNodes*DefaultGPUsPerNode {
		t.Errorf("TotalGPUs() = %d, want %d", got, DefaultNodes*DefaultGPUsPerNode)
	}
	if got := c.TotalCores(); got != DefaultNodes*DefaultCoresPerNode {
		t.Errorf("TotalCores() = %d, want %d", got, DefaultNodes*DefaultCoresPerNode)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New(zero config) should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(bad config) should panic")
		}
	}()
	MustNew(Config{})
}

func TestAllocateRelease(t *testing.T) {
	c := MustNew(smallConfig())
	alloc := job.Allocation{NodeIDs: []int{0}, CPUCores: 4, GPUs: 1}
	if err := c.Allocate(1, alloc); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	n, _ := c.Node(0)
	if n.FreeCores() != 4 || n.FreeGPUs() != 1 {
		t.Errorf("after alloc: free = %d cores %d gpus, want 4, 1", n.FreeCores(), n.FreeGPUs())
	}
	if got := c.JobCores(1); got != 4 {
		t.Errorf("JobCores = %d, want 4", got)
	}
	nodes, ok := c.Placement(1)
	if !ok || len(nodes) != 1 || nodes[0] != 0 {
		t.Errorf("Placement = %v, %v", nodes, ok)
	}
	if err := c.Release(1); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if n.FreeCores() != 8 || n.FreeGPUs() != 2 {
		t.Errorf("after release: free = %d cores %d gpus, want 8, 2", n.FreeCores(), n.FreeGPUs())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestAllocateMultiNode(t *testing.T) {
	c := MustNew(smallConfig())
	alloc := job.Allocation{NodeIDs: []int{1, 2}, CPUCores: 2, GPUs: 2}
	if err := c.Allocate(7, alloc); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	for _, nid := range []int{1, 2} {
		n, _ := c.Node(nid)
		if n.UsedCores() != 2 || n.UsedGPUs() != 2 {
			t.Errorf("node %d: used = %d cores %d gpus, want 2, 2", nid, n.UsedCores(), n.UsedGPUs())
		}
	}
	if got := c.UsedGPUs(); got != 4 {
		t.Errorf("UsedGPUs = %d, want 4", got)
	}
}

func TestAllocateErrors(t *testing.T) {
	c := MustNew(smallConfig())
	tests := []struct {
		name  string
		id    job.ID
		alloc job.Allocation
		want  error
	}{
		{"no nodes", 1, job.Allocation{CPUCores: 1}, nil},
		{"bad node", 1, job.Allocation{NodeIDs: []int{99}, CPUCores: 1}, ErrUnknownNode},
		{"negative node", 1, job.Allocation{NodeIDs: []int{-1}, CPUCores: 1}, ErrUnknownNode},
		{"zero cores", 1, job.Allocation{NodeIDs: []int{0}, CPUCores: 0}, nil},
		{"negative gpus", 1, job.Allocation{NodeIDs: []int{0}, CPUCores: 1, GPUs: -1}, nil},
		{"too many cores", 1, job.Allocation{NodeIDs: []int{0}, CPUCores: 9}, ErrInsufficient},
		{"too many gpus", 1, job.Allocation{NodeIDs: []int{0}, CPUCores: 1, GPUs: 3}, ErrInsufficient},
		{"duplicate node", 1, job.Allocation{NodeIDs: []int{0, 0}, CPUCores: 1}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := c.Allocate(tt.id, tt.alloc)
			if err == nil {
				t.Fatal("expected error")
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
	// Atomicity: failing multi-node allocation must leave nothing behind.
	if err := c.Allocate(2, job.Allocation{NodeIDs: []int{0, 99}, CPUCores: 1}); err == nil {
		t.Fatal("expected failure")
	}
	if c.UsedCores() != 0 {
		t.Errorf("failed allocation leaked %d cores", c.UsedCores())
	}
}

func TestAllocateDuplicateJob(t *testing.T) {
	c := MustNew(smallConfig())
	alloc := job.Allocation{NodeIDs: []int{0}, CPUCores: 1}
	if err := c.Allocate(1, alloc); err != nil {
		t.Fatal(err)
	}
	if err := c.Allocate(1, alloc); !errors.Is(err, ErrDuplicateJob) {
		t.Errorf("error = %v, want ErrDuplicateJob", err)
	}
}

func TestReleaseUnknown(t *testing.T) {
	c := MustNew(smallConfig())
	if err := c.Release(5); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("error = %v, want ErrUnknownJob", err)
	}
}

func TestResize(t *testing.T) {
	c := MustNew(smallConfig())
	if err := c.Allocate(1, job.Allocation{NodeIDs: []int{0}, CPUCores: 2, GPUs: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Resize(1, 6); err != nil {
		t.Fatalf("Resize grow: %v", err)
	}
	if got := c.JobCores(1); got != 6 {
		t.Errorf("JobCores = %d, want 6", got)
	}
	if err := c.Resize(1, 1); err != nil {
		t.Fatalf("Resize shrink: %v", err)
	}
	n, _ := c.Node(0)
	if n.FreeCores() != 7 {
		t.Errorf("FreeCores = %d, want 7", n.FreeCores())
	}
	if err := c.Resize(1, 9); !errors.Is(err, ErrInsufficient) {
		t.Errorf("oversize resize error = %v, want ErrInsufficient", err)
	}
	if err := c.Resize(1, 0); err == nil {
		t.Error("Resize to 0 should fail")
	}
	if err := c.Resize(42, 2); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job resize error = %v, want ErrUnknownJob", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestResizeMultiNodeAtomic(t *testing.T) {
	c := MustNew(smallConfig())
	// Job 1 spans nodes 0,1 with 2 cores each; job 2 fills node 1.
	if err := c.Allocate(1, job.Allocation{NodeIDs: []int{0, 1}, CPUCores: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Allocate(2, job.Allocation{NodeIDs: []int{1}, CPUCores: 6}); err != nil {
		t.Fatal(err)
	}
	// Growing job 1 to 4 would fit node 0 but not node 1: must fail atomically.
	if err := c.Resize(1, 4); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("error = %v, want ErrInsufficient", err)
	}
	n0, _ := c.Node(0)
	if n0.UsedCores() != 2 {
		t.Errorf("node 0 used %d cores after failed resize, want 2", n0.UsedCores())
	}
}

func TestFindNodes(t *testing.T) {
	c := MustNew(smallConfig())
	// Fill node 0 entirely, node 1 partially.
	if err := c.Allocate(1, job.Allocation{NodeIDs: []int{0}, CPUCores: 8, GPUs: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Allocate(2, job.Allocation{NodeIDs: []int{1}, CPUCores: 4, GPUs: 1}); err != nil {
		t.Fatal(err)
	}

	t.Run("first fit skips full node", func(t *testing.T) {
		got := c.FindNodes(1, 2, 1, false)
		if len(got) != 1 || got[0] != 1 {
			t.Errorf("FindNodes = %v, want [1]", got)
		}
	})
	t.Run("best fit prefers loaded node", func(t *testing.T) {
		got := c.FindNodes(1, 2, 1, true)
		if len(got) != 1 || got[0] != 1 {
			t.Errorf("FindNodes = %v, want [1] (fewest free GPUs)", got)
		}
	})
	t.Run("multi node", func(t *testing.T) {
		got := c.FindNodes(2, 2, 2, false)
		if len(got) != 2 || got[0] != 2 || got[1] != 3 {
			t.Errorf("FindNodes = %v, want [2 3]", got)
		}
	})
	t.Run("not enough nodes", func(t *testing.T) {
		if got := c.FindNodes(4, 2, 2, false); got != nil {
			t.Errorf("FindNodes = %v, want nil", got)
		}
	})
	t.Run("zero want", func(t *testing.T) {
		if got := c.FindNodes(0, 1, 0, false); got != nil {
			t.Errorf("FindNodes = %v, want nil", got)
		}
	})
}

func TestStrandedGPUs(t *testing.T) {
	c := MustNew(smallConfig())
	// Node 0: all 8 cores used, 1 GPU used -> 1 free GPU stranded.
	if err := c.Allocate(1, job.Allocation{NodeIDs: []int{0}, CPUCores: 8, GPUs: 1}); err != nil {
		t.Fatal(err)
	}
	if got := c.StrandedGPUs(1); got != 1 {
		t.Errorf("StrandedGPUs(1) = %d, want 1", got)
	}
	// With minCores 0 nothing is stranded (free cores 0 >= 0).
	if got := c.StrandedGPUs(0); got != 0 {
		t.Errorf("StrandedGPUs(0) = %d, want 0", got)
	}
}

func TestFragmentedGPUs(t *testing.T) {
	c := MustNew(smallConfig()) // 2 GPUs per node
	// Node 0: 1 GPU used -> 1 free GPU; cannot host a 2-GPU-per-node job.
	if err := c.Allocate(1, job.Allocation{NodeIDs: []int{0}, CPUCores: 1, GPUs: 1}); err != nil {
		t.Fatal(err)
	}
	if got := c.FragmentedGPUs(2, 1); got != 1 {
		t.Errorf("FragmentedGPUs(2,1) = %d, want 1", got)
	}
	// For 1-GPU jobs nothing on node 0 is fragmented.
	if got := c.FragmentedGPUs(1, 1); got != 0 {
		t.Errorf("FragmentedGPUs(1,1) = %d, want 0", got)
	}
}

func TestSnapshot(t *testing.T) {
	c := MustNew(smallConfig())
	if err := c.Allocate(1, job.Allocation{NodeIDs: []int{0, 1}, CPUCores: 3, GPUs: 1}); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.UsedCores != 6 || s.UsedGPUs != 2 || s.ActiveNodes != 2 {
		t.Errorf("Snapshot = %+v", s)
	}
	if s.TotalCores != 32 || s.TotalGPUs != 8 {
		t.Errorf("Snapshot totals = %+v", s)
	}
}

func TestNodeAccessors(t *testing.T) {
	c := MustNew(smallConfig())
	if err := c.Allocate(3, job.Allocation{NodeIDs: []int{2}, CPUCores: 5, GPUs: 1}); err != nil {
		t.Fatal(err)
	}
	n, err := c.Node(2)
	if err != nil {
		t.Fatal(err)
	}
	if n.JobCount() != 1 {
		t.Errorf("JobCount = %d, want 1", n.JobCount())
	}
	jobs := n.Jobs()
	if len(jobs) != 1 || jobs[0] != 3 {
		t.Errorf("Jobs = %v, want [3]", jobs)
	}
	cores, gpus, ok := n.JobShare(3)
	if !ok || cores != 5 || gpus != 1 {
		t.Errorf("JobShare = %d, %d, %v", cores, gpus, ok)
	}
	if _, _, ok := n.JobShare(99); ok {
		t.Error("JobShare(99) should report !ok")
	}
	if _, err := c.Node(-1); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Node(-1) error = %v", err)
	}
	if _, err := c.Node(4); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Node(4) error = %v", err)
	}
}

func TestPlacementCopyIsolation(t *testing.T) {
	c := MustNew(smallConfig())
	nodeIDs := []int{0}
	if err := c.Allocate(1, job.Allocation{NodeIDs: nodeIDs, CPUCores: 1}); err != nil {
		t.Fatal(err)
	}
	nodeIDs[0] = 3 // mutating caller slice must not corrupt cluster state
	got, _ := c.Placement(1)
	if got[0] != 0 {
		t.Errorf("Placement = %v, want [0]", got)
	}
	got[0] = 9 // mutating returned slice must not corrupt either
	again, _ := c.Placement(1)
	if again[0] != 0 {
		t.Errorf("Placement after mutation = %v, want [0]", again)
	}
}

// TestRandomWorkloadInvariants drives random allocate/release/resize
// sequences and checks invariants after every step.
func TestRandomWorkloadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := MustNew(Config{Nodes: 6, CoresPerNode: 12, GPUsPerNode: 4, BandwidthGBs: 100, PCIeGBs: 16})
	live := map[job.ID]bool{}
	nextID := job.ID(1)
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(live) == 0:
			nodes := c.FindNodes(1+rng.Intn(2), 1+rng.Intn(6), rng.Intn(3), rng.Intn(2) == 0)
			if nodes == nil {
				continue
			}
			alloc := job.Allocation{NodeIDs: nodes, CPUCores: 1 + rng.Intn(6), GPUs: rng.Intn(3)}
			// Re-check fit with the possibly different core/gpu draw.
			fits := true
			for _, nid := range nodes {
				n, _ := c.Node(nid)
				if !n.Fits(alloc.CPUCores, alloc.GPUs) {
					fits = false
				}
			}
			err := c.Allocate(nextID, alloc)
			if fits && err != nil {
				t.Fatalf("step %d: Allocate fitting job: %v", step, err)
			}
			if err == nil {
				live[nextID] = true
				nextID++
			}
		case op == 1:
			for id := range live {
				if err := c.Release(id); err != nil {
					t.Fatalf("step %d: Release: %v", step, err)
				}
				delete(live, id)
				break
			}
		default:
			for id := range live {
				_ = c.Resize(id, 1+rng.Intn(8)) // may legitimately fail
				break
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestAllocateReleaseProperty: allocating then releasing any fitting job
// restores exact free-resource counts.
func TestAllocateReleaseProperty(t *testing.T) {
	f := func(coreReq, gpuReq uint8) bool {
		c := MustNew(smallConfig())
		cores := int(coreReq)%8 + 1
		gpus := int(gpuReq) % 3
		before := c.Snapshot()
		if err := c.Allocate(1, job.Allocation{NodeIDs: []int{0}, CPUCores: cores, GPUs: gpus}); err != nil {
			return true
		}
		if err := c.Release(1); err != nil {
			return false
		}
		after := c.Snapshot()
		return before == after
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNodeStateGatesPlacement: a node that is draining or down reports no
// free resources (so no placement path selects it), while its existing
// allocations stay releasable; coming back up restores placement.
func TestNodeStateGatesPlacement(t *testing.T) {
	c := MustNew(smallConfig())
	if err := c.Allocate(1, job.Allocation{NodeIDs: []int{0}, CPUCores: 2, GPUs: 1}); err != nil {
		t.Fatal(err)
	}

	if err := c.SetNodeState(0, NodeDraining); err != nil {
		t.Fatal(err)
	}
	n, _ := c.Node(0)
	if n.Up() || n.State() != NodeDraining {
		t.Fatalf("node state = %v, want draining", n.State())
	}
	if n.FreeCores() != 0 || n.FreeGPUs() != 0 {
		t.Errorf("draining node reports %d cores %d gpus free, want 0", n.FreeCores(), n.FreeGPUs())
	}
	if n.Fits(1, 0) {
		t.Error("draining node still fits new work")
	}
	if err := c.Allocate(2, job.Allocation{NodeIDs: []int{0}, CPUCores: 1}); err == nil {
		t.Error("Allocate succeeded on a draining node")
	}
	// Existing work drains normally.
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("draining with resident job must be legal: %v", err)
	}
	if err := c.Release(1); err != nil {
		t.Fatalf("release on draining node: %v", err)
	}

	if err := c.SetNodeState(0, NodeDown); err != nil {
		t.Fatal(err)
	}
	if got := c.UnavailableNodes(); len(got) != 1 || got[0] != 0 {
		t.Errorf("UnavailableNodes = %v, want [0]", got)
	}
	if ids := c.FindNodes(4, 1, 0, false); ids != nil {
		t.Errorf("FindNodes placed on a cluster with a down node: %v", ids)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("empty down node must be legal: %v", err)
	}

	if err := c.SetNodeState(0, NodeUp); err != nil {
		t.Fatal(err)
	}
	if err := c.Allocate(3, job.Allocation{NodeIDs: []int{0}, CPUCores: 2}); err != nil {
		t.Errorf("recovered node rejects work: %v", err)
	}
}

// TestDownNodeHostingJobsViolatesInvariants: the simulator must kill a
// crashed node's jobs before marking it down; the checker enforces it.
func TestDownNodeHostingJobsViolatesInvariants(t *testing.T) {
	c := MustNew(smallConfig())
	if err := c.Allocate(1, job.Allocation{NodeIDs: []int{1}, CPUCores: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetNodeState(1, NodeDown); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err == nil {
		t.Error("down node hosting a job passed invariants")
	}
}

func TestSetNodeStateErrors(t *testing.T) {
	c := MustNew(smallConfig())
	if err := c.SetNodeState(99, NodeDown); err == nil {
		t.Error("unknown node accepted")
	}
	if err := c.SetNodeState(0, NodeState(42)); err == nil {
		t.Error("unknown state accepted")
	}
	if NodeUp.String() == "" || NodeDraining.String() == "" || NodeDown.String() == "" || NodeState(9).String() == "" {
		t.Error("NodeState strings must be non-empty")
	}
}
