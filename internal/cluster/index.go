package cluster

import (
	"fmt"
	"sort"
)

// capacityIndex buckets node IDs by their effective free capacity so
// placement queries can iterate candidates in packing order without
// scanning, sorting or allocating. Nodes that are not up report zero free
// cores and GPUs, so they live in cell (0, 0) and a state change is an
// ordinary cell move — the index never needs to know about node states.
//
// Every cell holds ascending node IDs, so iterating cells free-GPUs-first
// reproduces exactly the order the previous implementation obtained by
// stable-sorting an ID-ordered candidate slice on (FreeGPUs, FreeCores):
// best-fit and worst-fit scans stay bit-identical to the pre-index engine.
//
// On top of the cells sit the hierarchical structures of hier.go, all
// maintained by the same insert/remove pair:
//
//   - tiers[g] is a segment tree over node IDs whose leaf for a node holds
//     its free cores when the node has at least g free GPUs, else -1.
//     First-fit descends tiers[gpus] leftmost-first, yielding exactly the
//     ID-ordered nodes the old linear Fits scan yielded — O(log n) per hit.
//   - counts is a 2-D Fenwick tree over the capacity grid answering
//     CountPlaceable in O(log G · log C).
//   - occ marks non-empty cells per GPU row so the best-fit and worst-fit
//     cell walks skip empty cells.
//   - shapeCount is the static dominance count over total node shapes
//     (Cores, GPUs) — capacity-independent, so it is computed once and
//     never mutated; ReserveNodes' shape pre-check reads it instead of
//     sweeping every node.
type capacityIndex struct {
	maxCores int
	maxGPUs  int
	// cells[g*(maxCores+1)+c] holds the IDs of nodes with FreeGPUs() == g
	// and FreeCores() == c, ascending.
	cells  [][]int
	tiers  []*segTree
	counts *fenwick2D
	occ    *rowBits
	// shapeCount[g*(maxCores+1)+c] counts nodes with GPUs >= g and
	// Cores >= c (total shape, independent of occupancy and node state).
	shapeCount []int
}

func newCapacityIndex(nodes []*Node) *capacityIndex {
	ix := &capacityIndex{}
	for _, n := range nodes {
		if n.Cores > ix.maxCores {
			ix.maxCores = n.Cores
		}
		if n.GPUs > ix.maxGPUs {
			ix.maxGPUs = n.GPUs
		}
	}
	rows, cols := ix.maxGPUs+1, ix.maxCores+1
	ix.cells = make([][]int, rows*cols)
	ix.tiers = make([]*segTree, rows)
	for g := range ix.tiers {
		ix.tiers[g] = newSegTree(len(nodes))
	}
	ix.counts = newFenwick2D(rows, cols)
	ix.occ = newRowBits(rows, cols)
	ix.shapeCount = make([]int, rows*cols)
	for _, n := range nodes {
		ix.shapeCount[n.GPUs*cols+n.Cores]++
	}
	// Suffix-sum the shape histogram into dominance counts.
	for g := rows - 1; g >= 0; g-- {
		for c := cols - 1; c >= 0; c-- {
			v := ix.shapeCount[g*cols+c]
			if g+1 < rows {
				v += ix.shapeCount[(g+1)*cols+c]
			}
			if c+1 < cols {
				v += ix.shapeCount[g*cols+c+1]
			}
			if g+1 < rows && c+1 < cols {
				v -= ix.shapeCount[(g+1)*cols+c+1]
			}
			ix.shapeCount[g*cols+c] = v
		}
	}
	for _, n := range nodes {
		ix.insert(n.FreeGPUs(), n.FreeCores(), n.ID)
	}
	return ix
}

func (ix *capacityIndex) cellIdx(gpus, cores int) int {
	return gpus*(ix.maxCores+1) + cores
}

// insert places node id into capacity cell (gpus, cores) and rewrites its
// tier leaves to match — insert always carries the node's current free
// capacity, so the remove that precedes it in a cell move never has to
// touch the trees.
func (ix *capacityIndex) insert(gpus, cores, id int) {
	cell := &ix.cells[ix.cellIdx(gpus, cores)]
	i := sort.SearchInts(*cell, id)
	*cell = append(*cell, 0)
	copy((*cell)[i+1:], (*cell)[i:])
	(*cell)[i] = id
	ix.counts.add(gpus, cores, 1)
	ix.occ.set(gpus, cores)
	for g := 0; g <= ix.maxGPUs; g++ {
		v := -1
		if gpus >= g {
			v = cores
		}
		ix.tiers[g].set(id, v)
	}
}

// remove takes node id out of capacity cell (gpus, cores). A missing entry
// can only mean the index and the node state disagree — corruption that
// would otherwise surface as a wrong placement far downstream — so it
// panics loudly instead of silently no-opping.
func (ix *capacityIndex) remove(gpus, cores, id int) {
	cell := &ix.cells[ix.cellIdx(gpus, cores)]
	i := sort.SearchInts(*cell, id)
	if i >= len(*cell) || (*cell)[i] != id {
		panic(fmt.Sprintf("cluster: capacity index corrupt: node %d not in cell (%d free gpus, %d free cores)",
			id, gpus, cores))
	}
	*cell = append((*cell)[:i], (*cell)[i+1:]...)
	ix.counts.add(gpus, cores, -1)
	if len(*cell) == 0 {
		ix.occ.clear(gpus, cores)
	}
}

func (ix *capacityIndex) contains(gpus, cores, id int) bool {
	if gpus < 0 || gpus > ix.maxGPUs || cores < 0 || cores > ix.maxCores {
		return false
	}
	cell := ix.cells[ix.cellIdx(gpus, cores)]
	i := sort.SearchInts(cell, id)
	return i < len(cell) && cell[i] == id
}

// auditNode verifies node id's hierarchical entries against its free
// capacity: every tier leaf and the occupancy bit of its cell. O(G log n),
// the per-touched-node complement of contains for the delta auditor.
func (ix *capacityIndex) auditNode(gpus, cores, id int) error {
	for g := 0; g <= ix.maxGPUs; g++ {
		want := -1
		if gpus >= g {
			want = cores
		}
		if got := ix.tiers[g].leaf(id); got != want {
			return fmt.Errorf("node %d: tier-%d segtree leaf holds %d, want %d", id, g, got, want)
		}
	}
	if !ix.occ.has(gpus, cores) {
		return fmt.Errorf("node %d: occupancy bitmap misses its cell (%d free gpus, %d free cores)",
			id, gpus, cores)
	}
	return nil
}

// audit verifies the hierarchical structures against the cells: Fenwick
// dominance counts match cell suffix sums everywhere, occupancy bits match
// cell emptiness, and every segment tree is internally consistent. The
// full-audit complement of auditNode; leaf values are covered by the
// per-node checks the full audit also runs.
func (ix *capacityIndex) audit() error {
	cols := ix.maxCores + 1
	// suffix[g][c] = total entries in cells with at least g GPUs, c cores.
	suffix := make([]int, (ix.maxGPUs+1)*cols)
	for g := ix.maxGPUs; g >= 0; g-- {
		for c := ix.maxCores; c >= 0; c-- {
			v := len(ix.cells[ix.cellIdx(g, c)])
			if g+1 <= ix.maxGPUs {
				v += suffix[(g+1)*cols+c]
			}
			if c+1 <= ix.maxCores {
				v += suffix[g*cols+c+1]
			}
			if g+1 <= ix.maxGPUs && c+1 <= ix.maxCores {
				v -= suffix[(g+1)*cols+c+1]
			}
			suffix[g*cols+c] = v
		}
	}
	for g := 0; g <= ix.maxGPUs; g++ {
		for c := 0; c <= ix.maxCores; c++ {
			if got, want := ix.counts.dominating(g, c), suffix[g*cols+c]; got != want {
				return fmt.Errorf("fenwick dominance count at (%d gpus, %d cores) is %d, cells sum to %d",
					g, c, got, want)
			}
			if got, want := ix.occ.has(g, c), len(ix.cells[ix.cellIdx(g, c)]) > 0; got != want {
				return fmt.Errorf("occupancy bit at (%d gpus, %d cores) is %v, cell has %d entries",
					g, c, got, len(ix.cells[ix.cellIdx(g, c)]))
			}
		}
	}
	for g, t := range ix.tiers {
		if err := t.audit(); err != nil {
			return fmt.Errorf("tier %d: %w", g, err)
		}
	}
	return nil
}

// size returns the total number of indexed entries (must equal the node
// count when the index is consistent).
func (ix *capacityIndex) size() int {
	total := 0
	for _, cell := range ix.cells {
		total += len(cell)
	}
	return total
}

// reindexFrom moves a node to the cell matching its current free capacity.
// oldGPUs/oldCores are the node's free values captured before the
// mutation; every Cluster mutator calls this for each touched node.
func (c *Cluster) reindexFrom(n *Node, oldGPUs, oldCores int) {
	newGPUs, newCores := n.FreeGPUs(), n.FreeCores()
	if newGPUs == oldGPUs && newCores == oldCores {
		return
	}
	c.index.remove(oldGPUs, oldCores, n.ID)
	c.index.insert(newGPUs, newCores, n.ID)
}

// CountPlaceable returns how many nodes currently fit cores and gpus —
// the Fenwick-backed equivalent of counting Fits over all nodes,
// O(log G · log C).
func (c *Cluster) CountPlaceable(cores, gpus int) int {
	if cores < 0 {
		cores = 0
	}
	if gpus < 0 {
		gpus = 0
	}
	ix := c.index
	if cores > ix.maxCores || gpus > ix.maxGPUs {
		return 0
	}
	return ix.counts.dominating(gpus, cores)
}

// CountShaped returns how many nodes could ever host cores and gpus by
// total shape (Cores, GPUs), regardless of occupancy or state — the
// reservation pre-check. O(1): node shapes never change, so the dominance
// table is computed once at construction.
func (c *Cluster) CountShaped(cores, gpus int) int {
	if cores < 0 {
		cores = 0
	}
	if gpus < 0 {
		gpus = 0
	}
	ix := c.index
	if cores > ix.maxCores || gpus > ix.maxGPUs {
		return 0
	}
	return ix.shapeCount[gpus*(ix.maxCores+1)+cores]
}

// ScanPlaceable calls fn for each node that fits cores and gpus until fn
// returns false. With bestFit the nodes come in packing order — fewest
// free GPUs first, then fewest free cores, then lowest ID — exactly the
// order placement previously obtained by stable-sorting candidates;
// otherwise nodes come in ID order (first-fit), yielded by a leftmost
// descent of the GPU tier's segment tree that never touches nodes that
// don't fit. fn must not mutate the cluster: allocations move nodes
// between index cells mid-scan.
func (c *Cluster) ScanPlaceable(cores, gpus int, bestFit bool, fn func(*Node) bool) {
	if cores < 0 {
		cores = 0
	}
	if gpus < 0 {
		gpus = 0
	}
	ix := c.index
	if cores > ix.maxCores || gpus > ix.maxGPUs {
		return
	}
	if !bestFit {
		t := ix.tiers[gpus]
		for id := t.nextAtLeast(0, cores); id >= 0; id = t.nextAtLeast(id+1, cores) {
			if !fn(c.nodes[id]) {
				return
			}
		}
		return
	}
	for g := gpus; g <= ix.maxGPUs; g++ {
		for cc := ix.occ.next(g, cores); cc >= 0; cc = ix.occ.next(g, cc+1) {
			for _, id := range ix.cells[ix.cellIdx(g, cc)] {
				if !fn(c.nodes[id]) {
					return
				}
			}
		}
	}
}

// ScanFreeDesc calls fn for every node in worst-fit order — most free
// GPUs first, then most free cores, then lowest ID — until fn returns
// false. Nodes that are not up report zero free capacity and come last.
// Empty cells are skipped via the occupancy bitmaps. fn must not mutate
// the cluster.
func (c *Cluster) ScanFreeDesc(fn func(*Node) bool) {
	ix := c.index
	for g := ix.maxGPUs; g >= 0; g-- {
		for cc := ix.occ.prev(g, ix.maxCores); cc >= 0; cc = ix.occ.prev(g, cc-1) {
			for _, id := range ix.cells[ix.cellIdx(g, cc)] {
				if !fn(c.nodes[id]) {
					return
				}
			}
		}
	}
}

// EachNode calls fn for every node in ID order until fn returns false,
// without copying the node slice (the allocation-free Nodes()).
func (c *Cluster) EachNode(fn func(*Node) bool) {
	for _, n := range c.nodes {
		if !fn(n) {
			return
		}
	}
}
