package cluster

import "sort"

// capacityIndex buckets node IDs by their effective free capacity so
// placement queries can iterate candidates in packing order without
// scanning, sorting or allocating. Nodes that are not up report zero free
// cores and GPUs, so they live in cell (0, 0) and a state change is an
// ordinary cell move — the index never needs to know about node states.
//
// Every cell holds ascending node IDs, so iterating cells free-GPUs-first
// reproduces exactly the order the previous implementation obtained by
// stable-sorting an ID-ordered candidate slice on (FreeGPUs, FreeCores):
// best-fit and worst-fit scans stay bit-identical to the pre-index engine.
type capacityIndex struct {
	maxCores int
	maxGPUs  int
	// cells[g*(maxCores+1)+c] holds the IDs of nodes with FreeGPUs() == g
	// and FreeCores() == c, ascending.
	cells [][]int
}

func newCapacityIndex(nodes []*Node) *capacityIndex {
	ix := &capacityIndex{}
	for _, n := range nodes {
		if n.Cores > ix.maxCores {
			ix.maxCores = n.Cores
		}
		if n.GPUs > ix.maxGPUs {
			ix.maxGPUs = n.GPUs
		}
	}
	ix.cells = make([][]int, (ix.maxGPUs+1)*(ix.maxCores+1))
	for _, n := range nodes {
		ix.insert(n.FreeGPUs(), n.FreeCores(), n.ID)
	}
	return ix
}

func (ix *capacityIndex) cellIdx(gpus, cores int) int {
	return gpus*(ix.maxCores+1) + cores
}

func (ix *capacityIndex) insert(gpus, cores, id int) {
	cell := &ix.cells[ix.cellIdx(gpus, cores)]
	i := sort.SearchInts(*cell, id)
	*cell = append(*cell, 0)
	copy((*cell)[i+1:], (*cell)[i:])
	(*cell)[i] = id
}

func (ix *capacityIndex) remove(gpus, cores, id int) {
	cell := &ix.cells[ix.cellIdx(gpus, cores)]
	i := sort.SearchInts(*cell, id)
	if i < len(*cell) && (*cell)[i] == id {
		*cell = append((*cell)[:i], (*cell)[i+1:]...)
	}
}

func (ix *capacityIndex) contains(gpus, cores, id int) bool {
	if gpus < 0 || gpus > ix.maxGPUs || cores < 0 || cores > ix.maxCores {
		return false
	}
	cell := ix.cells[ix.cellIdx(gpus, cores)]
	i := sort.SearchInts(cell, id)
	return i < len(cell) && cell[i] == id
}

// size returns the total number of indexed entries (must equal the node
// count when the index is consistent).
func (ix *capacityIndex) size() int {
	total := 0
	for _, cell := range ix.cells {
		total += len(cell)
	}
	return total
}

// reindexFrom moves a node to the cell matching its current free capacity.
// oldGPUs/oldCores are the node's free values captured before the
// mutation; every Cluster mutator calls this for each touched node.
func (c *Cluster) reindexFrom(n *Node, oldGPUs, oldCores int) {
	newGPUs, newCores := n.FreeGPUs(), n.FreeCores()
	if newGPUs == oldGPUs && newCores == oldCores {
		return
	}
	c.index.remove(oldGPUs, oldCores, n.ID)
	c.index.insert(newGPUs, newCores, n.ID)
}

// CountPlaceable returns how many nodes currently fit cores and gpus —
// the index-backed equivalent of counting Fits over all nodes.
func (c *Cluster) CountPlaceable(cores, gpus int) int {
	if cores < 0 {
		cores = 0
	}
	if gpus < 0 {
		gpus = 0
	}
	ix := c.index
	if cores > ix.maxCores || gpus > ix.maxGPUs {
		return 0
	}
	count := 0
	for g := gpus; g <= ix.maxGPUs; g++ {
		for cc := cores; cc <= ix.maxCores; cc++ {
			count += len(ix.cells[ix.cellIdx(g, cc)])
		}
	}
	return count
}

// ScanPlaceable calls fn for each node that fits cores and gpus until fn
// returns false. With bestFit the nodes come in packing order — fewest
// free GPUs first, then fewest free cores, then lowest ID — exactly the
// order placement previously obtained by stable-sorting candidates;
// otherwise nodes come in ID order (first-fit). fn must not mutate the
// cluster: allocations move nodes between index cells mid-scan.
func (c *Cluster) ScanPlaceable(cores, gpus int, bestFit bool, fn func(*Node) bool) {
	if !bestFit {
		for _, n := range c.nodes {
			if n.Fits(cores, gpus) && !fn(n) {
				return
			}
		}
		return
	}
	if cores < 0 {
		cores = 0
	}
	if gpus < 0 {
		gpus = 0
	}
	ix := c.index
	if cores > ix.maxCores || gpus > ix.maxGPUs {
		return
	}
	for g := gpus; g <= ix.maxGPUs; g++ {
		for cc := cores; cc <= ix.maxCores; cc++ {
			for _, id := range ix.cells[ix.cellIdx(g, cc)] {
				if !fn(c.nodes[id]) {
					return
				}
			}
		}
	}
}

// ScanFreeDesc calls fn for every node in worst-fit order — most free
// GPUs first, then most free cores, then lowest ID — until fn returns
// false. Nodes that are not up report zero free capacity and come last.
// fn must not mutate the cluster.
func (c *Cluster) ScanFreeDesc(fn func(*Node) bool) {
	ix := c.index
	for g := ix.maxGPUs; g >= 0; g-- {
		for cc := ix.maxCores; cc >= 0; cc-- {
			for _, id := range ix.cells[ix.cellIdx(g, cc)] {
				if !fn(c.nodes[id]) {
					return
				}
			}
		}
	}
}

// EachNode calls fn for every node in ID order until fn returns false,
// without copying the node slice (the allocation-free Nodes()).
func (c *Cluster) EachNode(fn func(*Node) bool) {
	for _, n := range c.nodes {
		if !fn(n) {
			return
		}
	}
}
