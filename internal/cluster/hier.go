package cluster

import (
	"fmt"
	"math/bits"
)

// This file holds the hierarchical placement structures that answer the
// three placement query shapes in sub-linear time while reproducing the
// iteration orders of the flat scans they replaced bit for bit:
//
//   - segTree: one segment tree over node IDs per GPU tier, storing
//     subtree-max free cores. First-fit becomes a leftmost descent that
//     yields fitting nodes in exactly ID order — O(log n) per yielded node,
//     nodes that don't fit are never touched.
//   - fenwick2D: a 2-D Fenwick (binary-indexed) tree over the
//     (freeGPUs, freeCores) capacity grid, so counting the nodes that
//     dominate a request is O(log G · log C) instead of a sweep over every
//     dominating cell.
//   - rowBits: per-GPU-row occupancy bitmaps over the capacity cells, so
//     the best-fit and worst-fit cell walks skip empty cells in O(1) words
//     instead of visiting each one.
//
// None of these serialize: like the cell index they are rebuilt
// deterministically from node state on construction and maintained
// incrementally by every mutator, and checkpoint restore replays
// placements through the ordinary mutators. The invariant auditors verify
// them against node state — per touched node in O(G log n) for the delta
// check, structurally in the full audit.

// segTree is an iterative max segment tree over node IDs. Leaves hold the
// node's free cores within one GPU tier, or -1 when the node has fewer
// free GPUs than the tier demands (or does not exist — leaves past n pad
// the tree to a power of two).
type segTree struct {
	n    int
	size int // smallest power of two >= n; leaves live at [size, size+n)
	max  []int
}

func newSegTree(n int) *segTree {
	size := 1
	for size < n {
		size <<= 1
	}
	t := &segTree{n: n, size: size, max: make([]int, 2*size)}
	for i := range t.max {
		t.max[i] = -1
	}
	return t
}

// leaf returns the stored value for node id.
func (t *segTree) leaf(id int) int { return t.max[t.size+id] }

// set updates node id's value and rewrites the O(log n) ancestor maxima,
// stopping as soon as an ancestor is already correct.
func (t *segTree) set(id, v int) {
	p := t.size + id
	if t.max[p] == v {
		return
	}
	t.max[p] = v
	for p >>= 1; p >= 1; p >>= 1 {
		m := t.max[2*p]
		if t.max[2*p+1] > m {
			m = t.max[2*p+1]
		}
		if t.max[p] == m {
			break
		}
		t.max[p] = m
	}
}

// nextAtLeast returns the smallest node ID >= from whose value is >= want,
// or -1. Ascends from the starting leaf checking right siblings, then
// descends leftmost into the first subtree that can satisfy the query —
// O(log n) regardless of how many nodes in between don't fit.
func (t *segTree) nextAtLeast(from, want int) int {
	if from < 0 {
		from = 0
	}
	if from >= t.n {
		return -1
	}
	p := t.size + from
	if t.max[p] >= want {
		return from
	}
	for p > 1 {
		if p&1 == 0 && t.max[p+1] >= want {
			p++
			for p < t.size {
				if t.max[2*p] >= want {
					p = 2 * p
				} else {
					p = 2*p + 1
				}
			}
			return p - t.size
		}
		p >>= 1
	}
	return -1
}

// audit verifies structural consistency: every internal node is the max of
// its children and every padding leaf past n is still -1. Per-leaf values
// are audited against node state by CheckNodeInvariants.
func (t *segTree) audit() error {
	for p := 1; p < t.size; p++ {
		m := t.max[2*p]
		if t.max[2*p+1] > m {
			m = t.max[2*p+1]
		}
		if t.max[p] != m {
			return fmt.Errorf("segtree node %d holds %d, children max %d", p, t.max[p], m)
		}
	}
	for i := t.n; i < t.size; i++ {
		if t.max[t.size+i] != -1 {
			return fmt.Errorf("segtree padding leaf %d holds %d, want -1", i, t.max[t.size+i])
		}
	}
	return nil
}

// fenwick2D counts index entries per (freeGPUs, freeCores) capacity cell
// with O(log G · log C) dominance queries. Coordinates are stored reversed
// (high capacity maps to low index), so "how many nodes have at least g
// GPUs and c cores free" is an ordinary 2-D prefix sum.
type fenwick2D struct {
	rows, cols int // maxGPUs+1, maxCores+1
	tree       []int
}

func newFenwick2D(rows, cols int) *fenwick2D {
	return &fenwick2D{rows: rows, cols: cols, tree: make([]int, (rows+1)*(cols+1))}
}

// add applies delta to capacity cell (gpus, cores).
func (f *fenwick2D) add(gpus, cores, delta int) {
	for r := f.rows - gpus; r <= f.rows; r += r & (-r) {
		row := r * (f.cols + 1)
		for c := f.cols - cores; c <= f.cols; c += c & (-c) {
			f.tree[row+c] += delta
		}
	}
}

// dominating returns how many entries sit in cells with at least gpus GPUs
// and cores cores free.
func (f *fenwick2D) dominating(gpus, cores int) int {
	total := 0
	for r := f.rows - gpus; r > 0; r -= r & (-r) {
		row := r * (f.cols + 1)
		for c := f.cols - cores; c > 0; c -= c & (-c) {
			total += f.tree[row+c]
		}
	}
	return total
}

// rowBits marks the non-empty capacity cells of each GPU row, one bit per
// core value, so cell walks skip runs of empty cells with a word scan.
type rowBits struct {
	cols  int // maxCores + 1 valid bits per row
	words [][]uint64
}

func newRowBits(rows, cols int) *rowBits {
	b := &rowBits{cols: cols, words: make([][]uint64, rows)}
	for i := range b.words {
		b.words[i] = make([]uint64, (cols+63)/64)
	}
	return b
}

func (b *rowBits) set(g, c int)      { b.words[g][c>>6] |= 1 << (c & 63) }
func (b *rowBits) clear(g, c int)    { b.words[g][c>>6] &^= 1 << (c & 63) }
func (b *rowBits) has(g, c int) bool { return b.words[g][c>>6]&(1<<(c&63)) != 0 }

// next returns the smallest marked core value >= c in row g, or -1.
func (b *rowBits) next(g, c int) int {
	if c < 0 {
		c = 0
	}
	if c >= b.cols {
		return -1
	}
	row := b.words[g]
	w := c >> 6
	cur := row[w] &^ (1<<(c&63) - 1)
	for {
		if cur != 0 {
			return w<<6 + bits.TrailingZeros64(cur)
		}
		w++
		if w >= len(row) {
			return -1
		}
		cur = row[w]
	}
}

// prev returns the largest marked core value <= c in row g, or -1.
func (b *rowBits) prev(g, c int) int {
	if c >= b.cols {
		c = b.cols - 1
	}
	if c < 0 {
		return -1
	}
	row := b.words[g]
	w := c >> 6
	cur := row[w]
	if s := c & 63; s != 63 {
		cur &= 1<<(s+1) - 1
	}
	for {
		if cur != 0 {
			return w<<6 + 63 - bits.LeadingZeros64(cur)
		}
		w--
		if w < 0 {
			return -1
		}
		cur = row[w]
	}
}
