package cluster

import (
	"bytes"
	"testing"

	"github.com/coda-repro/coda/internal/job"
)

// FuzzPlacementIndex differentially fuzzes the hierarchical placement
// index: the input bytes choose a cluster shape and drive a mutation
// script (allocate, release, resize, node state flips), after which every
// query shape — first-fit order, best-fit order, worst-fit order,
// CountPlaceable, CountShaped — must match a naive scan over Node.Fits,
// and the structural auditors must pass. Any divergence means the
// incremental maintenance in a mutator corrupted a layer.
func FuzzPlacementIndex(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 8, 2})
	// Fill-then-drain: allocations followed by releases and a crash.
	f.Add([]byte{6, 8, 3, 0, 0, 4, 2, 0, 1, 2, 1, 1, 2, 8, 1, 1, 0, 3, 2, 0})
	// State churn across all three node states.
	f.Add([]byte{3, 4, 1, 3, 0, 2, 3, 1, 1, 3, 2, 0, 3, 0, 0, 0, 1, 2, 0})
	// Resizes interleaved with allocations.
	f.Add([]byte{8, 16, 5, 0, 1, 6, 1, 2, 0, 12, 0, 2, 1, 0, 2, 0, 1, 3, 3})
	f.Add(bytes.Repeat([]byte{0, 1, 7, 2}, 24))
	f.Add(bytes.Repeat([]byte{0xff, 0x03, 0x51}, 30))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := Config{
			Nodes:        2,
			CoresPerNode: 8,
			GPUsPerNode:  2,
			BandwidthGBs: 100,
			PCIeGBs:      16,
		}
		if len(data) >= 3 {
			cfg.Nodes = 1 + int(data[0]%12)
			cfg.CoresPerNode = 1 + int(data[1]%16)
			cfg.GPUsPerNode = int(data[2] % 6)
			cfg.CPUOnlyNodes = int(data[2]>>6) % 4
			data = data[3:]
		}
		c, err := New(cfg)
		if err != nil {
			t.Skipf("config rejected: %v", err)
		}
		var live []job.ID
		nextID := job.ID(1)
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		for len(data) > 0 {
			switch next() % 4 {
			case 0: // allocate one node if the chosen node fits
				nid := int(next()) % cfg.TotalNodes()
				cores := 1 + int(next())%cfg.CoresPerNode
				gpus := int(next()) % (cfg.GPUsPerNode + 1)
				n, err := c.Node(nid)
				if err != nil {
					t.Fatal(err)
				}
				if !n.Fits(cores, gpus) {
					continue
				}
				alloc := job.Allocation{NodeIDs: []int{nid}, CPUCores: cores, GPUs: gpus}
				if err := c.Allocate(nextID, alloc); err != nil {
					t.Fatalf("allocate on fitting node: %v", err)
				}
				live = append(live, nextID)
				nextID++
			case 1: // release
				if len(live) == 0 {
					continue
				}
				i := int(next()) % len(live)
				if err := c.Release(live[i]); err != nil {
					t.Fatalf("release: %v", err)
				}
				live = append(live[:i], live[i+1:]...)
			case 2: // resize (may legitimately fail on capacity)
				if len(live) == 0 {
					continue
				}
				i := int(next()) % len(live)
				_ = c.Resize(live[i], 1+int(next())%cfg.CoresPerNode)
			case 3: // node state flip; crash releases resident jobs first
				nid := int(next()) % cfg.TotalNodes()
				st := []NodeState{NodeUp, NodeDraining, NodeDown}[int(next())%3]
				if st == NodeDown {
					n, err := c.Node(nid)
					if err != nil {
						t.Fatal(err)
					}
					for _, id := range n.Jobs() {
						if err := c.Release(id); err != nil {
							t.Fatalf("crash release: %v", err)
						}
						for i, l := range live {
							if l == id {
								live = append(live[:i], live[i+1:]...)
								break
							}
						}
					}
				}
				if err := c.SetNodeState(nid, st); err != nil {
					t.Fatalf("set state: %v", err)
				}
			}
		}

		// Differential check: every query shape over the full request grid
		// (plus out-of-range probes) against the naive Fits-scan oracles.
		for gpus := -1; gpus <= cfg.GPUsPerNode+1; gpus++ {
			for cores := -1; cores <= cfg.CoresPerNode+1; cores++ {
				if got, want := scanAll(c, cores, gpus, false), oracleFirstFit(c, cores, gpus); !equalIDs(got, want) {
					t.Fatalf("first-fit(%d,%d) = %v, oracle %v", cores, gpus, got, want)
				}
				if got, want := scanAll(c, cores, gpus, true), oracleBestFit(c, cores, gpus); !equalIDs(got, want) {
					t.Fatalf("best-fit(%d,%d) = %v, oracle %v", cores, gpus, got, want)
				}
				if got, want := c.CountPlaceable(cores, gpus), len(oracleFirstFit(c, cores, gpus)); got != want {
					t.Fatalf("count(%d,%d) = %d, oracle %d", cores, gpus, got, want)
				}
				wantShaped := 0
				for _, n := range c.Nodes() {
					if n.Cores >= cores && n.GPUs >= gpus {
						wantShaped++
					}
				}
				if got := c.CountShaped(cores, gpus); got != wantShaped {
					t.Fatalf("shaped(%d,%d) = %d, oracle %d", cores, gpus, got, wantShaped)
				}
			}
		}
		if got, want := scanFreeDescAll(c), oracleWorstFit(c); !equalIDs(got, want) {
			t.Fatalf("worst-fit = %v, oracle %v", got, want)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
