package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/coda-repro/coda/internal/job"
)

// indexMismatch compares the incrementally maintained index against a
// from-scratch rebuild and reports the first differing cell.
func indexMismatch(c *Cluster) error {
	want := newCapacityIndex(c.nodes)
	got := c.index
	if got.maxCores != want.maxCores || got.maxGPUs != want.maxGPUs {
		return fmt.Errorf("index shape (%d cores, %d gpus), rebuild has (%d, %d)",
			got.maxCores, got.maxGPUs, want.maxCores, want.maxGPUs)
	}
	for g := 0; g <= want.maxGPUs; g++ {
		for cc := 0; cc <= want.maxCores; cc++ {
			gc, wc := got.cells[got.cellIdx(g, cc)], want.cells[want.cellIdx(g, cc)]
			if len(gc) != len(wc) {
				return fmt.Errorf("cell (%d gpus, %d cores): index holds %v, rebuild %v", g, cc, gc, wc)
			}
			for i := range gc {
				if gc[i] != wc[i] {
					return fmt.Errorf("cell (%d gpus, %d cores): index holds %v, rebuild %v", g, cc, gc, wc)
				}
			}
			// The hierarchical layers must agree with the rebuild too.
			if gd, wd := got.counts.dominating(g, cc), want.counts.dominating(g, cc); gd != wd {
				return fmt.Errorf("fenwick count at (%d gpus, %d cores): index says %d, rebuild %d", g, cc, gd, wd)
			}
			if gb, wb := got.occ.has(g, cc), want.occ.has(g, cc); gb != wb {
				return fmt.Errorf("occupancy bit at (%d gpus, %d cores): index says %v, rebuild %v", g, cc, gb, wb)
			}
			if gs, ws := got.shapeCount[got.cellIdx(g, cc)], want.shapeCount[want.cellIdx(g, cc)]; gs != ws {
				return fmt.Errorf("shape count at (%d gpus, %d cores): index says %d, rebuild %d", g, cc, gs, ws)
			}
		}
	}
	for g := range want.tiers {
		for id := range c.nodes {
			if gl, wl := got.tiers[g].leaf(id), want.tiers[g].leaf(id); gl != wl {
				return fmt.Errorf("tier-%d leaf for node %d: index holds %d, rebuild %d", g, id, gl, wl)
			}
		}
	}
	return nil
}

// TestIndexMatchesRebuildUnderRandomMutations drives the cluster through
// randomized sequences of every mutation kind — allocate (job start),
// release (completion/preemption), resize, node crash/drain/recover, and
// checkpoint restore — and after every step checks that the incrementally
// maintained capacity index is identical to one rebuilt from scratch.
func TestIndexMatchesRebuildUnderRandomMutations(t *testing.T) {
	cfg := Config{
		Nodes:        12,
		CoresPerNode: 8,
		GPUsPerNode:  4,
		BandwidthGBs: 100,
		PCIeGBs:      16,
		CPUOnlyNodes: 3,
	}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		live := []job.ID{} // jobs currently allocated
		nextID := job.ID(1)
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // start: allocate a random request
				nodes := rng.Intn(3) + 1
				alloc := job.Allocation{
					CPUCores: rng.Intn(cfg.CoresPerNode) + 1,
					GPUs:     rng.Intn(cfg.GPUsPerNode + 1),
				}
				ids := c.FindNodes(nodes, alloc.CPUCores, alloc.GPUs, rng.Intn(2) == 0)
				if ids == nil {
					continue
				}
				alloc.NodeIDs = ids
				if err := c.Allocate(nextID, alloc); err != nil {
					t.Fatalf("seed %d step %d: allocate: %v", seed, step, err)
				}
				live = append(live, nextID)
				nextID++
			case op < 6: // complete/preempt: release a random live job
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				if err := c.Release(live[i]); err != nil {
					t.Fatalf("seed %d step %d: release: %v", seed, step, err)
				}
				live = append(live[:i], live[i+1:]...)
			case op < 8: // resize a random live job
				if len(live) == 0 {
					continue
				}
				id := live[rng.Intn(len(live))]
				// Resize may legitimately fail when the target exceeds free
				// capacity; the index must stay consistent either way.
				_ = c.Resize(id, rng.Intn(cfg.CoresPerNode)+1)
			default: // crash / drain / recover a random node
				nid := rng.Intn(cfg.TotalNodes())
				states := []NodeState{NodeUp, NodeDraining, NodeDown}
				st := states[rng.Intn(len(states))]
				if st == NodeDown {
					// Mirror the simulator: a crash kills resident jobs first.
					n, err := c.Node(nid)
					if err != nil {
						t.Fatal(err)
					}
					for _, id := range n.Jobs() {
						if err := c.Release(id); err != nil {
							t.Fatalf("seed %d step %d: crash release: %v", seed, step, err)
						}
						for i, l := range live {
							if l == id {
								live = append(live[:i], live[i+1:]...)
								break
							}
						}
					}
				}
				if err := c.SetNodeState(nid, st); err != nil {
					t.Fatalf("seed %d step %d: set state: %v", seed, step, err)
				}
			}
			if err := indexMismatch(c); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}

		// Restore-from-checkpoint: the replayed cluster's index must also
		// match a rebuild (and the original, cell for cell).
		st := c.CheckpointState()
		fresh, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.RestoreCheckpointState(st); err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		if err := indexMismatch(fresh); err != nil {
			t.Fatalf("seed %d: restored cluster: %v", seed, err)
		}
		if err := indexMismatch(c); err != nil {
			t.Fatalf("seed %d: original after checkpoint: %v", seed, err)
		}
	}
}

// TestIndexDetectsCorruption plants a corruption and checks the per-node
// audit reports it: a node whose index cell no longer matches its free
// capacity must fail CheckNodeInvariants.
func TestIndexDetectsCorruption(t *testing.T) {
	c, err := New(Config{Nodes: 4, CoresPerNode: 8, GPUsPerNode: 2, BandwidthGBs: 100, PCIeGBs: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Move node 2 out of its rightful cell behind the cluster's back.
	n := c.nodes[2]
	c.index.remove(n.FreeGPUs(), n.FreeCores(), n.ID)
	c.index.insert(0, 0, n.ID)
	if err := c.CheckNodeInvariants(2); err == nil {
		t.Fatal("CheckNodeInvariants missed an index corruption")
	}
	if err := c.CheckInvariants(); err == nil {
		t.Fatal("CheckInvariants missed an index corruption")
	}
}
