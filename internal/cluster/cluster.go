// Package cluster models the multi-tenant GPU cluster of the paper: a set
// of nodes with CPU cores, GPUs, memory-bandwidth capacity and PCIe
// capacity, plus pure accounting for allocating and releasing jobs. All
// placement *policy* lives in the scheduler packages; this package only
// answers "what is free where" and enforces capacity invariants.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"github.com/coda-repro/coda/internal/job"
)

// Paper cluster constants (§III-A): ~80 PCIe multi-GPU servers, two-socket
// Intel Xeon Gold 6132 (2x14 cores), GTX 1080Ti GPUs, 400 GPUs total.
const (
	// DefaultNodes is the node count of the paper's cluster.
	DefaultNodes = 80
	// DefaultCoresPerNode is two 14-core Xeon Gold 6132 sockets.
	DefaultCoresPerNode = 28
	// DefaultGPUsPerNode keeps the paper's 400 GPUs / 80 nodes ratio.
	DefaultGPUsPerNode = 5
	// DefaultBandwidthGBs approximates the two-socket DRAM bandwidth of a
	// Xeon Gold 6132 server (6 DDR4-2666 channels per socket).
	DefaultBandwidthGBs = 120.0
	// DefaultPCIeGBs is the PCIe 3.0 x16 bandwidth the paper cites (§IV-C3).
	DefaultPCIeGBs = 16.0
)

// Errors returned by allocation and release.
var (
	// ErrInsufficient means a node lacks the requested free resources.
	ErrInsufficient = errors.New("cluster: insufficient free resources")
	// ErrUnknownNode means a node ID is out of range.
	ErrUnknownNode = errors.New("cluster: unknown node")
	// ErrUnknownJob means the job has no allocation to release.
	ErrUnknownJob = errors.New("cluster: unknown job")
	// ErrDuplicateJob means the job already holds an allocation.
	ErrDuplicateJob = errors.New("cluster: job already allocated")
)

// Config describes the cluster to build.
type Config struct {
	// Nodes is the GPU node count.
	Nodes int
	// CoresPerNode is the CPU core count of each node.
	CoresPerNode int
	// GPUsPerNode is the GPU count of each GPU node.
	GPUsPerNode int
	// BandwidthGBs is each node's memory-bandwidth capacity in GB/s.
	BandwidthGBs float64
	// PCIeGBs is each node's PCIe bandwidth capacity in GB/s.
	PCIeGBs float64
	// CPUOnlyNodes adds nodes with the same core count but no GPUs,
	// modeling the larger heterogeneous private clusters of §VI-G ("Some
	// larger private clusters maybe composed of both GPU nodes and CPU
	// nodes"). They receive IDs after the GPU nodes.
	CPUOnlyNodes int
}

// TotalNodes returns the GPU-node plus CPU-only-node count.
func (c Config) TotalNodes() int { return c.Nodes + c.CPUOnlyNodes }

// DefaultConfig returns the paper's 80-node cluster configuration.
func DefaultConfig() Config {
	return Config{
		Nodes:        DefaultNodes,
		CoresPerNode: DefaultCoresPerNode,
		GPUsPerNode:  DefaultGPUsPerNode,
		BandwidthGBs: DefaultBandwidthGBs,
		PCIeGBs:      DefaultPCIeGBs,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster config: nodes must be positive, got %d", c.Nodes)
	}
	if c.CoresPerNode <= 0 {
		return fmt.Errorf("cluster config: cores per node must be positive, got %d", c.CoresPerNode)
	}
	if c.GPUsPerNode < 0 {
		return fmt.Errorf("cluster config: gpus per node must be non-negative, got %d", c.GPUsPerNode)
	}
	if c.BandwidthGBs <= 0 {
		return fmt.Errorf("cluster config: bandwidth must be positive, got %g", c.BandwidthGBs)
	}
	if c.PCIeGBs <= 0 {
		return fmt.Errorf("cluster config: pcie bandwidth must be positive, got %g", c.PCIeGBs)
	}
	if c.CPUOnlyNodes < 0 {
		return fmt.Errorf("cluster config: cpu-only nodes must be non-negative, got %d", c.CPUOnlyNodes)
	}
	return nil
}

// NodeState is a node's availability for placement.
type NodeState int

const (
	// NodeUp accepts placements; the zero value, so existing construction
	// paths start every node in service.
	NodeUp NodeState = iota
	// NodeDraining keeps its current jobs but accepts no new placements
	// (planned maintenance: let work finish, place nothing new).
	NodeDraining
	// NodeDown hosts nothing: the fault injector kills its jobs on crash
	// and the node accepts no placements until it recovers.
	NodeDown
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "up"
	case NodeDraining:
		return "draining"
	case NodeDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// nodeShare is the per-node slice of one job's allocation.
type nodeShare struct {
	cores int
	gpus  int
}

// Node is one server of the cluster.
type Node struct {
	// ID is the node's index in the cluster.
	ID int
	// Cores is the total CPU core count.
	Cores int
	// GPUs is the total GPU count.
	GPUs int
	// BandwidthGBs is the memory-bandwidth capacity in GB/s.
	BandwidthGBs float64
	// PCIeGBs is the PCIe capacity in GB/s.
	PCIeGBs float64

	usedCores int
	usedGPUs  int
	state     NodeState
	jobs      map[job.ID]nodeShare
}

// State returns the node's availability state.
func (n *Node) State() NodeState { return n.state }

// Up reports whether the node accepts new placements.
func (n *Node) Up() bool { return n.state == NodeUp }

// FreeCores returns the unallocated core count. A node that is not up
// reports zero free cores, so every placement path — Fits, FindNodes and
// the schedulers' own scans — excludes it without knowing about states.
func (n *Node) FreeCores() int {
	if n.state != NodeUp {
		return 0
	}
	return n.Cores - n.usedCores
}

// FreeGPUs returns the unallocated GPU count (zero while the node is
// draining or down, mirroring FreeCores).
func (n *Node) FreeGPUs() int {
	if n.state != NodeUp {
		return 0
	}
	return n.GPUs - n.usedGPUs
}

// UsedCores returns the allocated core count.
func (n *Node) UsedCores() int { return n.usedCores }

// UsedGPUs returns the allocated GPU count.
func (n *Node) UsedGPUs() int { return n.usedGPUs }

// JobCount returns the number of jobs with a share on this node.
func (n *Node) JobCount() int { return len(n.jobs) }

// AppendJobs appends the IDs of jobs holding resources on this node to
// buf, unsorted, and returns the extended slice. The allocation-free
// sibling of Jobs for callers that reuse a scratch buffer and sort (or
// don't care about order) themselves.
func (n *Node) AppendJobs(buf []job.ID) []job.ID {
	//coda:ordered-ok callers sort the collected IDs or are order-independent
	for id := range n.jobs {
		buf = append(buf, id)
	}
	return buf
}

// Jobs returns the IDs of jobs holding resources on this node, sorted.
func (n *Node) Jobs() []job.ID {
	ids := make([]job.ID, 0, len(n.jobs))
	//coda:ordered-ok collected IDs are fully ordered by the sort below
	for id := range n.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// JobShare returns the cores and GPUs job id holds on this node.
func (n *Node) JobShare(id job.ID) (cores, gpus int, ok bool) {
	s, ok := n.jobs[id]
	return s.cores, s.gpus, ok
}

// Fits reports whether the node can host cores and gpus more.
func (n *Node) Fits(cores, gpus int) bool {
	return cores <= n.FreeCores() && gpus <= n.FreeGPUs()
}

// Cluster is the full set of nodes plus the job→nodes index.
type Cluster struct {
	nodes []*Node
	// placements maps a job to the node IDs hosting it.
	placements map[job.ID][]int
	// placementQueries counts placement scans (FindNodes and the
	// scheduler-side query helpers); the benchmark harness reads it to
	// report placement-queries/sec.
	placementQueries int64
	// index buckets nodes by free capacity; kept in sync by every mutator
	// so placement queries never scan or sort.
	index *capacityIndex
	// touched journals the node IDs every mutator changed since the last
	// ResetTouched — the delta invariant checker audits exactly these.
	touched []int
}

// TouchedNodes returns the IDs of nodes mutated since the last
// ResetTouched, in mutation order, possibly with duplicates. Callers must
// not retain the slice across a ResetTouched.
func (c *Cluster) TouchedNodes() []int { return c.touched }

// ResetTouched clears the touched-node journal, keeping its capacity.
func (c *Cluster) ResetTouched() { c.touched = c.touched[:0] }

// NotePlacementQuery counts one placement scan. The scheduler-side query
// helpers call it so benchmarks can report placement-queries/sec.
func (c *Cluster) NotePlacementQuery() { c.placementQueries++ }

// PlacementQueries returns the number of placement scans answered.
func (c *Cluster) PlacementQueries() int64 { return c.placementQueries }

// New builds a cluster from cfg.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		nodes:      make([]*Node, cfg.TotalNodes()),
		placements: make(map[job.ID][]int),
	}
	for i := range c.nodes {
		gpus := cfg.GPUsPerNode
		if i >= cfg.Nodes {
			gpus = 0 // CPU-only node
		}
		c.nodes[i] = &Node{
			ID:           i,
			Cores:        cfg.CoresPerNode,
			GPUs:         gpus,
			BandwidthGBs: cfg.BandwidthGBs,
			PCIeGBs:      cfg.PCIeGBs,
			jobs:         make(map[job.ID]nodeShare),
		}
	}
	c.index = newCapacityIndex(c.nodes)
	return c, nil
}

// MustNew builds a cluster and panics on config errors. For tests and
// examples with known-good configs.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Size returns the node count.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns node id, or an error if out of range.
func (c *Cluster) Node(id int) (*Node, error) {
	if id < 0 || id >= len(c.nodes) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return c.nodes[id], nil
}

// Nodes returns all nodes in ID order. The slice is a copy; the node
// pointers are shared (mutate only through Cluster methods).
func (c *Cluster) Nodes() []*Node {
	out := make([]*Node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// TotalCores returns the cluster-wide core count.
func (c *Cluster) TotalCores() int {
	total := 0
	for _, n := range c.nodes {
		total += n.Cores
	}
	return total
}

// TotalGPUs returns the cluster-wide GPU count.
func (c *Cluster) TotalGPUs() int {
	total := 0
	for _, n := range c.nodes {
		total += n.GPUs
	}
	return total
}

// UsedCores returns the cluster-wide allocated core count.
func (c *Cluster) UsedCores() int {
	total := 0
	for _, n := range c.nodes {
		total += n.usedCores
	}
	return total
}

// UsedGPUs returns the cluster-wide allocated GPU count.
func (c *Cluster) UsedGPUs() int {
	total := 0
	for _, n := range c.nodes {
		total += n.usedGPUs
	}
	return total
}

// Allocate grants alloc to job id. Every node in alloc.NodeIDs receives
// alloc.CPUCores cores and alloc.GPUs GPUs. The call is atomic: on any
// failure nothing is allocated.
func (c *Cluster) Allocate(id job.ID, alloc job.Allocation) error {
	if _, ok := c.placements[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateJob, id)
	}
	if len(alloc.NodeIDs) == 0 {
		return errors.New("cluster: allocation names no nodes")
	}
	if alloc.CPUCores <= 0 || alloc.GPUs < 0 {
		return fmt.Errorf("cluster: invalid allocation %d cores %d gpus", alloc.CPUCores, alloc.GPUs)
	}
	seen := make(map[int]bool, len(alloc.NodeIDs))
	for _, nid := range alloc.NodeIDs {
		if nid < 0 || nid >= len(c.nodes) {
			return fmt.Errorf("%w: %d", ErrUnknownNode, nid)
		}
		if seen[nid] {
			return fmt.Errorf("cluster: node %d listed twice for job %d", nid, id)
		}
		seen[nid] = true
		if !c.nodes[nid].Fits(alloc.CPUCores, alloc.GPUs) {
			return fmt.Errorf("%w: node %d for job %d (%d cores, %d gpus free; need %d, %d)",
				ErrInsufficient, nid, id,
				c.nodes[nid].FreeCores(), c.nodes[nid].FreeGPUs(),
				alloc.CPUCores, alloc.GPUs)
		}
	}
	for _, nid := range alloc.NodeIDs {
		n := c.nodes[nid]
		oldGPUs, oldCores := n.FreeGPUs(), n.FreeCores()
		n.usedCores += alloc.CPUCores
		n.usedGPUs += alloc.GPUs
		n.jobs[id] = nodeShare{cores: alloc.CPUCores, gpus: alloc.GPUs}
		c.reindexFrom(n, oldGPUs, oldCores)
		c.touched = append(c.touched, nid)
	}
	c.placements[id] = append([]int(nil), alloc.NodeIDs...)
	return nil
}

// Release frees everything job id holds.
func (c *Cluster) Release(id job.ID) error {
	nodeIDs, ok := c.placements[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	for _, nid := range nodeIDs {
		n := c.nodes[nid]
		share := n.jobs[id]
		oldGPUs, oldCores := n.FreeGPUs(), n.FreeCores()
		n.usedCores -= share.cores
		n.usedGPUs -= share.gpus
		delete(n.jobs, id)
		c.reindexFrom(n, oldGPUs, oldCores)
		c.touched = append(c.touched, nid)
	}
	delete(c.placements, id)
	return nil
}

// Resize changes the per-node core count held by job id to newCores on
// every node it spans (the adaptive allocator grows/shrinks allocations,
// and the eliminator halves CPU-job cores on nodes without MBA).
func (c *Cluster) Resize(id job.ID, newCores int) error {
	nodeIDs, ok := c.placements[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	if newCores <= 0 {
		return fmt.Errorf("cluster: resize to %d cores for job %d", newCores, id)
	}
	// Validate first: growth must fit on every node.
	for _, nid := range nodeIDs {
		n := c.nodes[nid]
		share := n.jobs[id]
		if delta := newCores - share.cores; delta > n.FreeCores() {
			return fmt.Errorf("%w: node %d cannot grow job %d by %d cores",
				ErrInsufficient, nid, id, delta)
		}
	}
	for _, nid := range nodeIDs {
		n := c.nodes[nid]
		share := n.jobs[id]
		oldGPUs, oldCores := n.FreeGPUs(), n.FreeCores()
		n.usedCores += newCores - share.cores
		share.cores = newCores
		n.jobs[id] = share
		c.reindexFrom(n, oldGPUs, oldCores)
		c.touched = append(c.touched, nid)
	}
	return nil
}

// SetNodeState transitions node id to st. The cluster only does the
// accounting: it does not kill or migrate jobs. The fault injector in
// internal/sim kills the jobs of a crashed node before marking it down;
// draining keeps jobs in place. Allocations held on a non-up node remain
// valid and releasable so completions and kills always settle cleanly.
func (c *Cluster) SetNodeState(id int, st NodeState) error {
	n, err := c.Node(id)
	if err != nil {
		return err
	}
	switch st {
	case NodeUp, NodeDraining, NodeDown:
		oldGPUs, oldCores := n.FreeGPUs(), n.FreeCores()
		n.state = st
		c.reindexFrom(n, oldGPUs, oldCores)
		c.touched = append(c.touched, id)
		return nil
	default:
		return fmt.Errorf("cluster: unknown node state %v", st)
	}
}

// UnavailableNodes returns the IDs of nodes not currently up, sorted.
func (c *Cluster) UnavailableNodes() []int {
	var out []int
	for _, n := range c.nodes {
		if n.state != NodeUp {
			out = append(out, n.ID)
		}
	}
	return out
}

// Placement returns the node IDs hosting job id.
func (c *Cluster) Placement(id job.ID) ([]int, bool) {
	nodeIDs, ok := c.placements[id]
	if !ok {
		return nil, false
	}
	return append([]int(nil), nodeIDs...), true
}

// PlacementSize returns how many nodes host job id without copying the
// placement (the allocation-free sibling of Placement for consistency
// checks).
func (c *Cluster) PlacementSize(id job.ID) (int, bool) {
	nodeIDs, ok := c.placements[id]
	return len(nodeIDs), ok
}

// JobCores returns the per-node core count job id holds (0 if not placed).
func (c *Cluster) JobCores(id job.ID) int {
	nodeIDs, ok := c.placements[id]
	if !ok || len(nodeIDs) == 0 {
		return 0
	}
	share := c.nodes[nodeIDs[0]].jobs[id]
	return share.cores
}

// FindNodes returns the IDs of up to want nodes that each fit cores and
// gpus, preferring the most-loaded (best-fit, to reduce fragmentation) when
// bestFit is true, else first-fit in ID order. Returns nil if fewer than
// want nodes qualify.
func (c *Cluster) FindNodes(want, cores, gpus int, bestFit bool) []int {
	c.NotePlacementQuery()
	if want <= 0 {
		return nil
	}
	if c.CountPlaceable(cores, gpus) < want {
		return nil
	}
	// ScanPlaceable's best-fit order (fewest free GPUs, then fewest free
	// cores, then lowest ID) matches the stable sort this method used to
	// apply to ID-ordered candidates; first-fit is the same ID scan.
	out := make([]int, 0, want)
	c.ScanPlaceable(cores, gpus, bestFit, func(n *Node) bool {
		out = append(out, n.ID)
		return len(out) < want
	})
	return out
}

// StrandedGPUs counts free GPUs on nodes whose free cores are below
// minCores — GPUs that cannot be used because the node ran out of CPU,
// the paper's first fragmentation case (§VI-C).
func (c *Cluster) StrandedGPUs(minCores int) int {
	stranded := 0
	for _, n := range c.nodes {
		if n.FreeGPUs() > 0 && n.FreeCores() < minCores {
			stranded += n.FreeGPUs()
		}
	}
	return stranded
}

// FragmentedGPUs counts free GPUs that are unusable for a job wanting
// gpusPerNode GPUs on one node — the paper's second fragmentation case:
// partially-occupied nodes cannot host 4-GPU jobs (§VI-C).
func (c *Cluster) FragmentedGPUs(gpusPerNode, minCores int) int {
	frag := 0
	for _, n := range c.nodes {
		free := n.FreeGPUs()
		if free == 0 {
			continue
		}
		if free < gpusPerNode || n.FreeCores() < minCores {
			frag += free
		}
	}
	return frag
}

// Snapshot summarizes cluster occupancy.
type Snapshot struct {
	// UsedCores / TotalCores and UsedGPUs / TotalGPUs are occupancy counts.
	UsedCores, TotalCores int
	UsedGPUs, TotalGPUs   int
	// ActiveNodes counts nodes hosting at least one job.
	ActiveNodes int
}

// Snapshot returns current occupancy.
func (c *Cluster) Snapshot() Snapshot {
	s := Snapshot{TotalCores: c.TotalCores(), TotalGPUs: c.TotalGPUs()}
	for _, n := range c.nodes {
		s.UsedCores += n.usedCores
		s.UsedGPUs += n.usedGPUs
		if len(n.jobs) > 0 {
			s.ActiveNodes++
		}
	}
	return s
}

// CheckNodeInvariants verifies one node's accounting consistency and its
// capacity-index position — the O(1)-per-node audit the simulator's delta
// invariant checker runs on nodes an event touched.
func (c *Cluster) CheckNodeInvariants(nid int) error {
	n, err := c.Node(nid)
	if err != nil {
		return err
	}
	cores, gpus := 0, 0
	for _, s := range n.jobs {
		cores += s.cores
		gpus += s.gpus
	}
	if cores != n.usedCores {
		return fmt.Errorf("node %d: job shares sum to %d cores, counter says %d", n.ID, cores, n.usedCores)
	}
	if gpus != n.usedGPUs {
		return fmt.Errorf("node %d: job shares sum to %d gpus, counter says %d", n.ID, gpus, n.usedGPUs)
	}
	if n.usedCores < 0 || n.usedCores > n.Cores {
		return fmt.Errorf("node %d: used cores %d out of [0,%d]", n.ID, n.usedCores, n.Cores)
	}
	if n.usedGPUs < 0 || n.usedGPUs > n.GPUs {
		return fmt.Errorf("node %d: used gpus %d out of [0,%d]", n.ID, n.usedGPUs, n.GPUs)
	}
	if n.state == NodeDown && len(n.jobs) > 0 {
		return fmt.Errorf("node %d: down but still hosts %d job(s)", n.ID, len(n.jobs))
	}
	if !c.index.contains(n.FreeGPUs(), n.FreeCores(), n.ID) {
		return fmt.Errorf("node %d: missing from capacity-index cell (%d free gpus, %d free cores)",
			n.ID, n.FreeGPUs(), n.FreeCores())
	}
	return c.index.auditNode(n.FreeGPUs(), n.FreeCores(), n.ID)
}

// CheckInvariants verifies internal accounting consistency; it returns an
// error describing the first violation found. Used by tests and the
// simulator's self-checks.
func (c *Cluster) CheckInvariants() error {
	for _, n := range c.nodes {
		if err := c.CheckNodeInvariants(n.ID); err != nil {
			return err
		}
	}
	// Per-node checks prove every node appears in its correct index cell;
	// a matching total rules out stale leftover entries anywhere else.
	if got := c.index.size(); got != len(c.nodes) {
		return fmt.Errorf("capacity index holds %d entries for %d nodes", got, len(c.nodes))
	}
	// Structural audit of the hierarchical layers: Fenwick counts and
	// occupancy bits against the cells, segment trees internally (leaf
	// values were just proven per node above).
	if err := c.index.audit(); err != nil {
		return err
	}
	//coda:ordered-ok error reporting on already-broken invariants; any witness will do
	for id, nodeIDs := range c.placements {
		for _, nid := range nodeIDs {
			if _, ok := c.nodes[nid].jobs[id]; !ok {
				return fmt.Errorf("job %d placed on node %d but node has no share", id, nid)
			}
		}
	}
	return nil
}
