package cluster

import (
	"fmt"
	"sort"

	"github.com/coda-repro/coda/internal/job"
)

// Checkpoint/restore support. Node capacities are construction parameters;
// only node availability states and job placements are serialized. A job's
// share is uniform across the nodes it spans (Allocate and Resize both apply
// per-node counts uniformly), so one (cores, gpus) pair per job suffices.

// PlacementState is one job's allocation.
type PlacementState struct {
	Job     job.ID
	NodeIDs []int
	// Cores and GPUs are the per-node share.
	Cores int
	GPUs  int
}

// State is the serializable cluster state.
type State struct {
	// NodeStates holds each node's availability, indexed by node ID.
	NodeStates []NodeState
	// Placements lists every allocation, sorted by job ID.
	Placements []PlacementState
}

// CheckpointState captures node states and placements.
func (c *Cluster) CheckpointState() State {
	st := State{
		NodeStates: make([]NodeState, len(c.nodes)),
		Placements: make([]PlacementState, 0, len(c.placements)),
	}
	for i, n := range c.nodes {
		st.NodeStates[i] = n.state
	}
	//coda:ordered-ok entries are sorted below before serialization
	for id, nodeIDs := range c.placements {
		share := c.nodes[nodeIDs[0]].jobs[id]
		st.Placements = append(st.Placements, PlacementState{
			Job:     id,
			NodeIDs: append([]int(nil), nodeIDs...),
			Cores:   share.cores,
			GPUs:    share.gpus,
		})
	}
	sort.Slice(st.Placements, func(i, j int) bool { return st.Placements[i].Job < st.Placements[j].Job })
	return st
}

// RestoreCheckpointState replays st into a freshly built, empty cluster with
// the same configuration. Placements are replayed through Allocate while
// every node is still up — reusing all of its validation (capacity, ranges,
// duplicates) — and the node states are applied afterwards, since Allocate
// refuses nodes that are not up.
func (c *Cluster) RestoreCheckpointState(st State) error {
	if len(c.placements) != 0 {
		return fmt.Errorf("cluster: restore into a non-empty cluster")
	}
	if len(st.NodeStates) != len(c.nodes) {
		return fmt.Errorf("cluster: checkpoint has %d nodes, cluster has %d", len(st.NodeStates), len(c.nodes))
	}
	for _, n := range c.nodes {
		if n.state != NodeUp {
			return fmt.Errorf("cluster: restore into a cluster with node %d not up", n.ID)
		}
	}
	for _, p := range st.Placements {
		err := c.Allocate(p.Job, job.Allocation{NodeIDs: p.NodeIDs, CPUCores: p.Cores, GPUs: p.GPUs})
		if err != nil {
			return fmt.Errorf("cluster: replay placement: %w", err)
		}
	}
	for i, ns := range st.NodeStates {
		if err := c.SetNodeState(i, ns); err != nil {
			return fmt.Errorf("cluster: restore node state: %w", err)
		}
	}
	return c.CheckInvariants()
}
