package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/coda-repro/coda/internal/job"
)

// Naive oracles: the flat scans the hierarchical index replaced. Each
// reproduces the documented iteration order from first principles so the
// golden tests below can prove the index yields identical sequences.

// oracleFirstFit lists every node that fits, in ID order.
func oracleFirstFit(c *Cluster, cores, gpus int) []int {
	var out []int
	for _, n := range c.Nodes() {
		if n.Fits(cores, gpus) {
			out = append(out, n.ID)
		}
	}
	return out
}

// oracleBestFit lists every node that fits in packing order: fewest free
// GPUs, then fewest free cores, then lowest ID (a stable sort over the
// ID-ordered candidates, as the pre-index engine did).
func oracleBestFit(c *Cluster, cores, gpus int) []int {
	type cand struct{ id, g, c int }
	var cands []cand
	for _, n := range c.Nodes() {
		if n.Fits(cores, gpus) {
			cands = append(cands, cand{n.ID, n.FreeGPUs(), n.FreeCores()})
		}
	}
	// Insertion sort keeps it honest and stable without importing sort.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if b.g < a.g || (b.g == a.g && b.c < a.c) {
				cands[j-1], cands[j] = b, a
			} else {
				break
			}
		}
	}
	out := make([]int, 0, len(cands))
	for _, cd := range cands {
		out = append(out, cd.id)
	}
	return out
}

// oracleWorstFit lists all nodes by (free GPUs desc, free cores desc, ID asc).
func oracleWorstFit(c *Cluster) []int {
	type cand struct{ id, g, c int }
	var cands []cand
	for _, n := range c.Nodes() {
		cands = append(cands, cand{n.ID, n.FreeGPUs(), n.FreeCores()})
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if b.g > a.g || (b.g == a.g && b.c > a.c) {
				cands[j-1], cands[j] = b, a
			} else {
				break
			}
		}
	}
	out := make([]int, 0, len(cands))
	for _, cd := range cands {
		out = append(out, cd.id)
	}
	return out
}

func scanAll(c *Cluster, cores, gpus int, bestFit bool) []int {
	var out []int
	c.ScanPlaceable(cores, gpus, bestFit, func(n *Node) bool {
		out = append(out, n.ID)
		return true
	})
	return out
}

func scanFreeDescAll(c *Cluster) []int {
	var out []int
	c.ScanFreeDesc(func(n *Node) bool {
		out = append(out, n.ID)
		return true
	})
	return out
}

// mutateRandomly drives the cluster through one random mutation step:
// allocate, release, resize, or node state change (crash/drain/recover).
// Returns the updated live-job list and next job ID.
func mutateRandomly(t testing.TB, rng *rand.Rand, c *Cluster, cfg Config, live []job.ID, nextID job.ID) ([]job.ID, job.ID) {
	switch op := rng.Intn(10); {
	case op < 4:
		nodes := rng.Intn(3) + 1
		alloc := job.Allocation{
			CPUCores: rng.Intn(cfg.CoresPerNode) + 1,
			GPUs:     rng.Intn(cfg.GPUsPerNode + 1),
		}
		ids := c.FindNodes(nodes, alloc.CPUCores, alloc.GPUs, rng.Intn(2) == 0)
		if ids == nil {
			return live, nextID
		}
		alloc.NodeIDs = ids
		if err := c.Allocate(nextID, alloc); err != nil {
			t.Fatalf("allocate: %v", err)
		}
		return append(live, nextID), nextID + 1
	case op < 6:
		if len(live) == 0 {
			return live, nextID
		}
		i := rng.Intn(len(live))
		if err := c.Release(live[i]); err != nil {
			t.Fatalf("release: %v", err)
		}
		return append(live[:i], live[i+1:]...), nextID
	case op < 8:
		if len(live) == 0 {
			return live, nextID
		}
		// Resize may legitimately fail on insufficient capacity; the index
		// must stay consistent either way.
		_ = c.Resize(live[rng.Intn(len(live))], rng.Intn(cfg.CoresPerNode)+1)
		return live, nextID
	default:
		nid := rng.Intn(cfg.TotalNodes())
		states := []NodeState{NodeUp, NodeDraining, NodeDown}
		st := states[rng.Intn(len(states))]
		if st == NodeDown {
			n, err := c.Node(nid)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range n.Jobs() {
				if err := c.Release(id); err != nil {
					t.Fatalf("crash release: %v", err)
				}
				for i, l := range live {
					if l == id {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			}
		}
		if err := c.SetNodeState(nid, st); err != nil {
			t.Fatalf("set state: %v", err)
		}
		return live, nextID
	}
}

// TestHierarchicalOrdersMatchNaiveScans is the 1000-state golden order
// proof: across a thousand randomly mutated cluster states, the full
// first-fit, best-fit and worst-fit iteration orders from the hierarchical
// index — and both counting queries — must equal the naive flat-scan
// oracles element for element. No scheduling decision can change if every
// query yields identical sequences.
func TestHierarchicalOrdersMatchNaiveScans(t *testing.T) {
	for seed := int64(0); seed < 1000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Nodes:        4 + rng.Intn(16),
			CoresPerNode: 2 + rng.Intn(14),
			GPUsPerNode:  rng.Intn(6),
			BandwidthGBs: 100,
			PCIeGBs:      16,
			CPUOnlyNodes: rng.Intn(4),
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		live := []job.ID{}
		nextID := job.ID(1)
		steps := 10 + rng.Intn(40)
		for s := 0; s < steps; s++ {
			live, nextID = mutateRandomly(t, rng, c, cfg, live, nextID)
		}
		for q := 0; q < 6; q++ {
			cores := rng.Intn(cfg.CoresPerNode+3) - 1 // includes -1 and beyond-max
			gpus := rng.Intn(cfg.GPUsPerNode+3) - 1
			if got, want := scanAll(c, cores, gpus, false), oracleFirstFit(c, cores, gpus); !equalIDs(got, want) {
				t.Fatalf("seed %d: first-fit(%d,%d) = %v, oracle %v", seed, cores, gpus, got, want)
			}
			if got, want := scanAll(c, cores, gpus, true), oracleBestFit(c, cores, gpus); !equalIDs(got, want) {
				t.Fatalf("seed %d: best-fit(%d,%d) = %v, oracle %v", seed, cores, gpus, got, want)
			}
			if got, want := c.CountPlaceable(cores, gpus), len(oracleFirstFit(c, cores, gpus)); got != want {
				t.Fatalf("seed %d: count(%d,%d) = %d, oracle %d", seed, cores, gpus, got, want)
			}
			wantShaped := 0
			for _, n := range c.Nodes() {
				if n.Cores >= cores && n.GPUs >= gpus {
					wantShaped++
				}
			}
			if got := c.CountShaped(cores, gpus); got != wantShaped {
				t.Fatalf("seed %d: shaped(%d,%d) = %d, oracle %d", seed, cores, gpus, got, wantShaped)
			}
		}
		if got, want := scanFreeDescAll(c), oracleWorstFit(c); !equalIDs(got, want) {
			t.Fatalf("seed %d: worst-fit = %v, oracle %v", seed, got, want)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestScanPlaceableEarlyStop proves the index paths honor fn returning
// false mid-scan (the common "first k hits" shape).
func TestScanPlaceableEarlyStop(t *testing.T) {
	c := MustNew(Config{Nodes: 10, CoresPerNode: 8, GPUsPerNode: 2, BandwidthGBs: 100, PCIeGBs: 16})
	for _, bestFit := range []bool{false, true} {
		var got []int
		c.ScanPlaceable(1, 0, bestFit, func(n *Node) bool {
			got = append(got, n.ID)
			return len(got) < 3
		})
		if len(got) != 3 {
			t.Fatalf("bestFit=%v: early stop yielded %v", bestFit, got)
		}
	}
	var got []int
	c.ScanFreeDesc(func(n *Node) bool {
		got = append(got, n.ID)
		return false
	})
	if len(got) != 1 {
		t.Fatalf("ScanFreeDesc early stop yielded %v", got)
	}
}

// TestRemovePanicsOnMissingEntry pins the loud-corruption contract: taking
// a node out of a cell it does not occupy must panic instead of silently
// no-opping into a wrong placement far downstream.
func TestRemovePanicsOnMissingEntry(t *testing.T) {
	c := MustNew(Config{Nodes: 4, CoresPerNode: 8, GPUsPerNode: 2, BandwidthGBs: 100, PCIeGBs: 16})
	defer func() {
		if recover() == nil {
			t.Fatal("remove of a missing entry did not panic")
		}
	}()
	c.index.remove(0, 0, 2) // node 2 is up with full capacity, not in (0,0)
}

// TestHierarchicalAuditsDetectCorruption plants a corruption in each
// hierarchical layer and checks the auditors report it.
func TestHierarchicalAuditsDetectCorruption(t *testing.T) {
	build := func() *Cluster {
		return MustNew(Config{Nodes: 4, CoresPerNode: 8, GPUsPerNode: 2, BandwidthGBs: 100, PCIeGBs: 16})
	}

	t.Run("segtree leaf", func(t *testing.T) {
		c := build()
		c.index.tiers[1].set(2, 3) // node 2 actually has 8 free cores
		if err := c.CheckNodeInvariants(2); err == nil {
			t.Fatal("per-node audit missed a wrong tier leaf")
		}
		if err := c.CheckInvariants(); err == nil {
			t.Fatal("full audit missed a wrong tier leaf")
		}
	})

	t.Run("segtree internal node", func(t *testing.T) {
		c := build()
		c.index.tiers[0].max[1] = -7 // root no longer the max of its children
		if err := c.CheckInvariants(); err == nil {
			t.Fatal("full audit missed an inconsistent segtree internal node")
		}
	})

	t.Run("fenwick count", func(t *testing.T) {
		c := build()
		c.index.counts.add(1, 1, 1) // phantom entry
		if err := c.CheckInvariants(); err == nil {
			t.Fatal("full audit missed a fenwick/cell mismatch")
		}
	})

	t.Run("occupancy bit", func(t *testing.T) {
		c := build()
		c.index.occ.set(1, 1) // no cell entries there
		if err := c.CheckInvariants(); err == nil {
			t.Fatal("full audit missed a stale occupancy bit")
		}
	})

	t.Run("occupancy bit cleared under a live cell", func(t *testing.T) {
		c := build()
		n := c.nodes[1]
		c.index.occ.clear(n.FreeGPUs(), n.FreeCores())
		if err := c.CheckNodeInvariants(1); err == nil {
			t.Fatal("per-node audit missed a cleared occupancy bit")
		}
	})
}

// TestSegTreeNextAtLeast exercises the descent directly across shapes and
// thresholds, against a linear reference.
func TestSegTreeNextAtLeast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 9, 64, 100} {
		rng := rand.New(rand.NewSource(int64(n)))
		tr := newSegTree(n)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(8) - 1
			tr.set(i, vals[i])
		}
		for trial := 0; trial < 200; trial++ {
			i := rng.Intn(n)
			vals[i] = rng.Intn(8) - 1
			tr.set(i, vals[i])
			from, want := rng.Intn(n+2)-1, rng.Intn(9)-1
			wantIdx := -1
			start := from
			if start < 0 {
				start = 0
			}
			for j := start; j < n; j++ {
				if vals[j] >= want {
					wantIdx = j
					break
				}
			}
			if got := tr.nextAtLeast(from, want); got != wantIdx {
				t.Fatalf("n=%d nextAtLeast(%d,%d) = %d, want %d (vals %v)", n, from, want, got, wantIdx, vals)
			}
		}
		if err := tr.audit(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestRowBitsNextPrev exercises the bitmap scans against a linear reference
// across word boundaries.
func TestRowBitsNextPrev(t *testing.T) {
	for _, cols := range []int{1, 5, 63, 64, 65, 129} {
		rng := rand.New(rand.NewSource(int64(cols)))
		b := newRowBits(1, cols)
		set := make([]bool, cols)
		for trial := 0; trial < 300; trial++ {
			c := rng.Intn(cols)
			if set[c] {
				b.clear(0, c)
				set[c] = false
			} else {
				b.set(0, c)
				set[c] = true
			}
			q := rng.Intn(cols+4) - 2
			wantNext := -1
			for j := max(q, 0); j < cols; j++ {
				if set[j] {
					wantNext = j
					break
				}
			}
			if got := b.next(0, q); got != wantNext {
				t.Fatalf("cols=%d next(%d) = %d, want %d", cols, q, got, wantNext)
			}
			wantPrev := -1
			for j := min(q, cols-1); j >= 0; j-- {
				if set[j] {
					wantPrev = j
					break
				}
			}
			if got := b.prev(0, q); got != wantPrev {
				t.Fatalf("cols=%d prev(%d) = %d, want %d", cols, q, got, wantPrev)
			}
		}
	}
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BenchmarkFirstFitScan measures one first-fit query (find 1 node for a
// mid-size request) on a loaded cluster at the paper scale and warehouse
// scale. Sub-linear cost in node count is the tentpole acceptance: the
// linear scan was ~60x slower at 5,000 nodes than at 80.
func BenchmarkFirstFitScan(b *testing.B) {
	for _, nodes := range []int{80, 1000, 5000} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			c := loadedCluster(b, nodes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				found := 0
				c.ScanPlaceable(4, 1, false, func(*Node) bool {
					found++
					return false
				})
			}
		})
	}
}

// BenchmarkCountPlaceable measures the Fenwick-backed dominance count.
func BenchmarkCountPlaceable(b *testing.B) {
	for _, nodes := range []int{80, 5000} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			c := loadedCluster(b, nodes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.CountPlaceable(4, 1)
			}
		})
	}
}

// loadedCluster builds a cluster at the paper's node shape filled to a
// deterministic ~90% core load so first-fit queries have to skip past a
// long occupied prefix — the worst case the segment tree exists for.
func loadedCluster(b *testing.B, nodes int) *Cluster {
	b.Helper()
	c := MustNew(Config{Nodes: nodes, CoresPerNode: 28, GPUsPerNode: 5, BandwidthGBs: 120, PCIeGBs: 16})
	rng := rand.New(rand.NewSource(1))
	id := job.ID(1)
	// Fill front to back, leaving only scattered tail nodes with room, so a
	// first-fit query must skip a long run of full nodes.
	for nid := 0; nid < nodes; nid++ {
		if rng.Intn(20) == 0 {
			continue // leave ~5% of nodes lightly loaded
		}
		if err := c.Allocate(id, job.Allocation{NodeIDs: []int{nid}, CPUCores: 26, GPUs: 5}); err != nil {
			b.Fatal(err)
		}
		id++
	}
	return c
}
