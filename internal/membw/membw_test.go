package membw

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/coda-repro/coda/internal/job"
)

func newTestMeter(t *testing.T, mba bool) *Meter {
	t.Helper()
	m, err := NewMeter(100, mba)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMeterValidation(t *testing.T) {
	if _, err := NewMeter(0, true); err == nil {
		t.Error("NewMeter(0) should fail")
	}
	if _, err := NewMeter(-5, true); err == nil {
		t.Error("NewMeter(-5) should fail")
	}
	m, err := NewMeter(120, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Capacity() != 120 {
		t.Errorf("Capacity = %g, want 120", m.Capacity())
	}
	if m.MBASupported() {
		t.Error("MBASupported should be false")
	}
}

func TestRegisterDeregister(t *testing.T) {
	m := newTestMeter(t, true)
	if err := m.Register(1, 30, true); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(1, 10, true); !errors.Is(err, ErrDuplicateJob) {
		t.Errorf("duplicate register error = %v", err)
	}
	if err := m.Register(2, -1, true); err == nil {
		t.Error("negative demand should fail")
	}
	if got := m.Total(); got != 30 {
		t.Errorf("Total = %g, want 30", got)
	}
	if err := m.Deregister(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Deregister(1); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("double deregister error = %v", err)
	}
	if got := m.Total(); got != 0 {
		t.Errorf("Total = %g, want 0", got)
	}
}

func TestSetDemand(t *testing.T) {
	m := newTestMeter(t, true)
	if err := m.SetDemand(1, 5); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("SetDemand unknown error = %v", err)
	}
	if err := m.Register(1, 30, true); err != nil {
		t.Fatal(err)
	}
	if err := m.SetDemand(1, 15); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.JobBandwidth(1); got != 15 {
		t.Errorf("JobBandwidth = %g, want 15", got)
	}
	if err := m.SetDemand(1, -3); err == nil {
		t.Error("negative SetDemand should fail")
	}
}

func TestThrottle(t *testing.T) {
	m := newTestMeter(t, true)
	if err := m.Register(1, 40, true); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(2, 20, false); err != nil {
		t.Fatal(err)
	}

	if err := m.Throttle(1, 10); err != nil {
		t.Fatalf("Throttle: %v", err)
	}
	if got, _ := m.JobBandwidth(1); got != 10 {
		t.Errorf("throttled bandwidth = %g, want 10", got)
	}
	if got := m.Total(); got != 30 {
		t.Errorf("Total = %g, want 30", got)
	}

	// Cap above demand has no effect on effective usage.
	if err := m.Throttle(1, 90); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.JobBandwidth(1); got != 40 {
		t.Errorf("high-cap bandwidth = %g, want 40", got)
	}

	if err := m.Throttle(2, 5); err == nil {
		t.Error("throttling a training job should fail")
	}
	if err := m.Throttle(99, 5); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("throttle unknown error = %v", err)
	}
	if err := m.Throttle(1, 0); err == nil {
		t.Error("zero cap should fail")
	}

	if err := m.Unthrottle(1); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.JobBandwidth(1); got != 40 {
		t.Errorf("unthrottled bandwidth = %g, want 40", got)
	}
	if err := m.Unthrottle(99); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unthrottle unknown error = %v", err)
	}
}

func TestThrottleWithoutMBA(t *testing.T) {
	m := newTestMeter(t, false)
	if err := m.Register(1, 40, true); err != nil {
		t.Fatal(err)
	}
	if err := m.Throttle(1, 10); err == nil {
		t.Error("Throttle on non-MBA node should fail")
	}
}

func TestUtilizationAndPressure(t *testing.T) {
	m := newTestMeter(t, true)
	if got := m.Pressure(); got != 0 {
		t.Errorf("empty Pressure = %g, want 0", got)
	}
	if err := m.Register(1, 50, true); err != nil {
		t.Fatal(err)
	}
	if got := m.Utilization(); got != 0.5 {
		t.Errorf("Utilization = %g, want 0.5", got)
	}
	if got := m.Pressure(); got != 0 {
		t.Errorf("under-capacity Pressure = %g, want 0", got)
	}
	if err := m.Register(2, 150, true); err != nil {
		t.Fatal(err)
	}
	// total 200 on capacity 100 -> pressure 1 - 100/200 = 0.5
	if got := m.Pressure(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Pressure = %g, want 0.5", got)
	}
}

func TestJobsOrdering(t *testing.T) {
	m := newTestMeter(t, true)
	for _, reg := range []struct {
		id     job.ID
		demand float64
		cpu    bool
	}{{1, 10, true}, {2, 40, true}, {3, 40, false}, {4, 25, true}} {
		if err := m.Register(reg.id, reg.demand, reg.cpu); err != nil {
			t.Fatal(err)
		}
	}
	jobs := m.Jobs()
	wantOrder := []job.ID{2, 3, 4, 1} // 40 (id 2), 40 (id 3), 25, 10
	if len(jobs) != len(wantOrder) {
		t.Fatalf("Jobs len = %d, want %d", len(jobs), len(wantOrder))
	}
	for i, want := range wantOrder {
		if jobs[i].ID != want {
			t.Errorf("Jobs[%d].ID = %d, want %d", i, jobs[i].ID, want)
		}
	}
	if !jobs[0].CPUJob || jobs[1].CPUJob {
		t.Error("CPUJob flags not preserved")
	}
}

func TestJobBandwidthUnknown(t *testing.T) {
	m := newTestMeter(t, true)
	if _, err := m.JobBandwidth(7); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("error = %v, want ErrUnknownJob", err)
	}
}

func TestMonitor(t *testing.T) {
	mon, err := NewMonitor(3, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if mon.Size() != 3 {
		t.Errorf("Size = %d, want 3", mon.Size())
	}
	if _, err := mon.Node(3); err == nil {
		t.Error("Node(3) should fail")
	}
	if _, err := mon.Node(-1); err == nil {
		t.Error("Node(-1) should fail")
	}
	m0, err := mon.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m0.Register(1, 80, true); err != nil {
		t.Fatal(err)
	}
	m2, _ := mon.Node(2)
	if err := m2.Register(2, 60, true); err != nil {
		t.Fatal(err)
	}

	hot := mon.HotNodes(0.75)
	if len(hot) != 1 || hot[0] != 0 {
		t.Errorf("HotNodes(0.75) = %v, want [0]", hot)
	}
	hot = mon.HotNodes(0.5)
	if len(hot) != 2 || hot[0] != 0 || hot[1] != 2 {
		t.Errorf("HotNodes(0.5) = %v, want [0 2]", hot)
	}
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(0, 100, true); err == nil {
		t.Error("NewMonitor(0 nodes) should fail")
	}
	if _, err := NewMonitor(2, -1, true); err == nil {
		t.Error("NewMonitor(negative capacity) should fail")
	}
}

// TestTotalProperty: the meter total always equals the sum of effective
// per-job bandwidths, and throttling never increases the total.
func TestTotalProperty(t *testing.T) {
	f := func(demands []uint8, capRaw uint8) bool {
		m, err := NewMeter(100, true)
		if err != nil {
			return false
		}
		sum := 0.0
		for i, d := range demands {
			if err := m.Register(job.ID(i+1), float64(d), true); err != nil {
				return false
			}
			sum += float64(d)
		}
		if math.Abs(m.Total()-sum) > 1e-9 {
			return false
		}
		before := m.Total()
		if len(demands) > 0 {
			cap := float64(capRaw) + 1
			if err := m.Throttle(1, cap); err != nil {
				return false
			}
		}
		return m.Total() <= before+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
