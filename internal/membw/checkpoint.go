package membw

import (
	"fmt"

	"github.com/coda-repro/coda/internal/job"
)

// Checkpoint/restore support. Meter capacity and MBA support are construction
// parameters; only the per-node job registrations (demand, active cap,
// throttle eligibility) are serialized.

// JobState is one registered job on one node.
type JobState struct {
	ID     job.ID
	Demand float64
	Cap    float64
	CPUJob bool
}

// MeterState is one node's registrations, sorted by job ID.
type MeterState struct {
	Jobs []JobState
}

// MonitorState is the whole cluster's bandwidth-registration state.
type MonitorState struct {
	Meters []MeterState
}

// CheckpointState captures every meter's registrations.
func (m *Monitor) CheckpointState() MonitorState {
	st := MonitorState{Meters: make([]MeterState, len(m.meters))}
	for i, meter := range m.meters {
		ms := MeterState{Jobs: make([]JobState, 0, len(meter.jobs))}
		for _, id := range meter.ids {
			u := meter.jobs[id]
			ms.Jobs = append(ms.Jobs, JobState{ID: id, Demand: u.demand, Cap: u.cap, CPUJob: u.cpuJob})
		}
		st.Meters[i] = ms
	}
	return st
}

// RestoreCheckpointState fills a freshly built monitor (same node count,
// capacity and MBA support as the checkpointed one) with st.
func (m *Monitor) RestoreCheckpointState(st MonitorState) error {
	if len(st.Meters) != len(m.meters) {
		return fmt.Errorf("membw: checkpoint has %d nodes, monitor has %d", len(st.Meters), len(m.meters))
	}
	for i, meter := range m.meters {
		if len(meter.jobs) != 0 {
			return fmt.Errorf("membw: restore into non-empty meter on node %d", i)
		}
	}
	for i, ms := range st.Meters {
		meter := m.meters[i]
		for _, js := range ms.Jobs {
			if js.Demand < 0 || js.Cap < 0 {
				return fmt.Errorf("membw: node %d job %d has negative demand/cap in checkpoint", i, js.ID)
			}
			if _, dup := meter.jobs[js.ID]; dup {
				return fmt.Errorf("membw: node %d has duplicate job %d in checkpoint", i, js.ID)
			}
			meter.jobs[js.ID] = usage{demand: js.Demand, cap: js.Cap, cpuJob: js.CPUJob}
			meter.insertID(js.ID)
		}
	}
	return nil
}
