// Package membw simulates Intel Memory Bandwidth Monitoring (MBM) and
// Memory Bandwidth Allocation (MBA), the sensor and actuator the paper's
// contention eliminator uses (§V-D). A Meter tracks per-job and per-node
// memory-bandwidth usage; an Allocator caps a job's bandwidth the way MBA's
// throttling classes do. Nodes may be configured without MBA support, in
// which case the eliminator falls back to halving the CPU job's cores.
package membw

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"github.com/coda-repro/coda/internal/job"
)

// Errors reported by the meter.
var (
	// ErrUnknownJob means the job is not registered on the node.
	ErrUnknownJob = errors.New("membw: unknown job")
	// ErrDuplicateJob means the job is already registered on the node.
	ErrDuplicateJob = errors.New("membw: job already registered")
)

// usage is one job's bandwidth record on a node.
type usage struct {
	// demand is what the job would drive unthrottled, in GB/s.
	demand float64
	// cap is the MBA-style throttle; 0 means uncapped.
	cap float64
	// cpuJob marks jobs eligible for throttling (the eliminator never
	// throttles DNN training jobs, §V-A).
	cpuJob bool
}

// effective returns the bandwidth the job actually drives.
func (u usage) effective() float64 {
	if u.cap > 0 && u.cap < u.demand {
		return u.cap
	}
	return u.demand
}

// Meter is the per-node bandwidth monitor, the MBM stand-in.
type Meter struct {
	// capacity is the node's total memory bandwidth in GB/s.
	capacity float64
	// mbaSupported reports whether the node's CPU supports MBA throttling.
	mbaSupported bool
	jobs         map[job.ID]usage
	// ids mirrors the keys of jobs sorted ascending, maintained on
	// register/deregister so Total and AppendJobs iterate in ID order
	// without per-call collection and sorting.
	ids []job.ID
}

// insertID adds id to the sorted ID mirror.
func (m *Meter) insertID(id job.ID) {
	i := sort.Search(len(m.ids), func(i int) bool { return m.ids[i] >= id })
	m.ids = append(m.ids, 0)
	copy(m.ids[i+1:], m.ids[i:])
	m.ids[i] = id
}

// removeID drops id from the sorted ID mirror.
func (m *Meter) removeID(id job.ID) {
	i := sort.Search(len(m.ids), func(i int) bool { return m.ids[i] >= id })
	if i < len(m.ids) && m.ids[i] == id {
		m.ids = append(m.ids[:i], m.ids[i+1:]...)
	}
}

// NewMeter builds a meter for a node with the given bandwidth capacity.
func NewMeter(capacityGBs float64, mbaSupported bool) (*Meter, error) {
	if capacityGBs <= 0 {
		return nil, fmt.Errorf("membw: capacity must be positive, got %g", capacityGBs)
	}
	return &Meter{
		capacity:     capacityGBs,
		mbaSupported: mbaSupported,
		jobs:         make(map[job.ID]usage),
	}, nil
}

// Capacity returns the node bandwidth capacity in GB/s.
func (m *Meter) Capacity() float64 { return m.capacity }

// MBASupported reports whether MBA throttling is available on this node.
func (m *Meter) MBASupported() bool { return m.mbaSupported }

// Register starts tracking a job that drives demand GB/s. cpuJob marks it
// throttle-eligible.
func (m *Meter) Register(id job.ID, demandGBs float64, cpuJob bool) error {
	if demandGBs < 0 {
		return fmt.Errorf("membw: negative demand %g for job %d", demandGBs, id)
	}
	if _, ok := m.jobs[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateJob, id)
	}
	m.jobs[id] = usage{demand: demandGBs, cpuJob: cpuJob}
	m.insertID(id)
	return nil
}

// Deregister stops tracking a job.
func (m *Meter) Deregister(id job.ID) error {
	if _, ok := m.jobs[id]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	delete(m.jobs, id)
	m.removeID(id)
	return nil
}

// SetDemand updates a job's unthrottled demand (e.g. after the eliminator
// halves its cores, which roughly halves its bandwidth).
func (m *Meter) SetDemand(id job.ID, demandGBs float64) error {
	u, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	if demandGBs < 0 {
		return fmt.Errorf("membw: negative demand %g for job %d", demandGBs, id)
	}
	u.demand = demandGBs
	m.jobs[id] = u
	return nil
}

// JobBandwidth returns the bandwidth job id currently drives.
func (m *Meter) JobBandwidth(id job.ID) (float64, error) {
	u, ok := m.jobs[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return u.effective(), nil
}

// Total returns the node's aggregate bandwidth usage in GB/s. Jobs are
// summed in ID order: float accumulation is order-sensitive, and the
// simulator's determinism guarantee needs bit-identical totals.
func (m *Meter) Total() float64 {
	total := 0.0
	for _, id := range m.ids {
		total += m.jobs[id].effective()
	}
	return total
}

// Utilization returns Total/Capacity in [0, +inf).
func (m *Meter) Utilization() float64 { return m.Total() / m.capacity }

// Pressure returns the bandwidth-contention pressure in [0, 1]: 0 when the
// node is at or under capacity, approaching 1 as demand exceeds capacity.
// The perfmodel package converts pressure into per-model slowdowns.
func (m *Meter) Pressure() float64 {
	total := m.Total()
	if total <= m.capacity {
		return 0
	}
	return 1 - m.capacity/total
}

// JobUsage describes one job's bandwidth record for reporting.
type JobUsage struct {
	// ID is the job.
	ID job.ID
	// DemandGBs is the unthrottled demand.
	DemandGBs float64
	// EffectiveGBs is the post-throttle usage.
	EffectiveGBs float64
	// CapGBs is the active MBA cap (0 when uncapped).
	CapGBs float64
	// CPUJob marks throttle eligibility.
	CPUJob bool
}

// Jobs returns all tracked jobs ordered by descending effective bandwidth
// (ties broken by ID) — the order the eliminator throttles in.
func (m *Meter) Jobs() []JobUsage {
	return m.AppendJobs(nil)
}

// AppendJobs appends the tracked jobs to buf in the same order Jobs uses,
// letting hot callers (the per-event invariant check) reuse a scratch slice.
func (m *Meter) AppendJobs(buf []JobUsage) []JobUsage {
	out := buf
	for _, id := range m.ids {
		u := m.jobs[id]
		out = append(out, JobUsage{
			ID:           id,
			DemandGBs:    u.demand,
			EffectiveGBs: u.effective(),
			CapGBs:       u.cap,
			CPUJob:       u.cpuJob,
		})
	}
	slices.SortFunc(out, func(a, b JobUsage) int {
		//coda:ordered-ok comparator tie-break; both values come from the same deterministic computation
		if a.EffectiveGBs != b.EffectiveGBs {
			if a.EffectiveGBs > b.EffectiveGBs {
				return -1
			}
			return 1
		}
		return int(a.ID) - int(b.ID)
	})
	return out
}

// Throttle applies an MBA-style cap to a CPU job. It fails on nodes without
// MBA support and on non-CPU jobs (training jobs are never throttled).
func (m *Meter) Throttle(id job.ID, capGBs float64) error {
	if !m.mbaSupported {
		return fmt.Errorf("membw: node lacks MBA support; halve job %d's cores instead", id)
	}
	u, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	if !u.cpuJob {
		return fmt.Errorf("membw: job %d is not a CPU job; training jobs are never throttled", id)
	}
	if capGBs <= 0 {
		return fmt.Errorf("membw: cap must be positive, got %g", capGBs)
	}
	u.cap = capGBs
	m.jobs[id] = u
	return nil
}

// Unthrottle removes a job's MBA cap.
func (m *Meter) Unthrottle(id job.ID) error {
	u, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	u.cap = 0
	m.jobs[id] = u
	return nil
}

// Monitor aggregates one Meter per node, the cluster-wide MBM view CODA's
// backend polls (§V-D "CODA monitors the total memory bandwidth usage of
// each node and the memory bandwidth of each CPU job").
type Monitor struct {
	meters []*Meter
}

// NewMonitor builds a monitor with one meter per node.
func NewMonitor(nodes int, capacityGBs float64, mbaSupported bool) (*Monitor, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("membw: nodes must be positive, got %d", nodes)
	}
	mon := &Monitor{meters: make([]*Meter, nodes)}
	for i := range mon.meters {
		m, err := NewMeter(capacityGBs, mbaSupported)
		if err != nil {
			return nil, err
		}
		mon.meters[i] = m
	}
	return mon, nil
}

// Node returns the meter for node id.
func (m *Monitor) Node(id int) (*Meter, error) {
	if id < 0 || id >= len(m.meters) {
		return nil, fmt.Errorf("membw: node %d out of range [0,%d)", id, len(m.meters))
	}
	return m.meters[id], nil
}

// Size returns the node count.
func (m *Monitor) Size() int { return len(m.meters) }

// HotNodes returns node IDs whose bandwidth utilization is at or above
// threshold (e.g. 0.75 per the paper), ascending by ID.
func (m *Monitor) HotNodes(threshold float64) []int {
	var hot []int
	for i, meter := range m.meters {
		if meter.Utilization() >= threshold {
			hot = append(hot, i)
		}
	}
	return hot
}
