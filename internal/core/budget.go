// Package core implements CODA, the paper's contribution: an adaptive CPU
// allocator that finds the just-enough ("slimmed") core count for each DNN
// training job (§V-B), a real-time contention eliminator that throttles
// bandwidth-hungry CPU jobs (§V-D), and a multi-array job scheduler that
// partitions cluster resources into a CPU array and a GPU array (with
// 1-GPU and 4-GPU sub-arrays) with cross-array preemption (§V-C).
package core

import (
	"fmt"
	"sort"

	"github.com/coda-repro/coda/internal/job"
)

// draw records how many cores a job took from each per-node pool.
type draw struct {
	fromReserve int // cores drawn from the GPU array's reservation
	fromShared  int // cores drawn from the CPU array's budget
}

func (d draw) total() int { return d.fromReserve + d.fromShared }

// nodeBudget partitions one node's cores between the GPU resource array
// ("reserve") and the CPU resource array ("shared"), tracking which jobs
// drew from where so preemption can reclaim exactly the borrowed cores.
type nodeBudget struct {
	cores    int // node core count
	reserve  int // cores reserved for the GPU array
	gpuDraws map[job.ID]draw
	cpuDraws map[job.ID]draw
}

func newNodeBudget(cores, reserve int) (*nodeBudget, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("core: node cores must be positive, got %d", cores)
	}
	if reserve < 0 || reserve > cores {
		return nil, fmt.Errorf("core: reserve %d out of [0,%d]", reserve, cores)
	}
	return &nodeBudget{
		cores:    cores,
		reserve:  reserve,
		gpuDraws: make(map[job.ID]draw),
		cpuDraws: make(map[job.ID]draw),
	}, nil
}

// reserveUsed returns the reserve cores in use (by GPU jobs and borrowers).
func (b *nodeBudget) reserveUsed() int {
	used := 0
	for _, d := range b.gpuDraws {
		used += d.fromReserve
	}
	for _, d := range b.cpuDraws {
		used += d.fromReserve
	}
	return used
}

// sharedUsed returns the CPU-budget cores in use.
func (b *nodeBudget) sharedUsed() int {
	used := 0
	for _, d := range b.gpuDraws {
		used += d.fromShared
	}
	for _, d := range b.cpuDraws {
		used += d.fromShared
	}
	return used
}

// reserveFree and sharedFree are the pools' headroom.
func (b *nodeBudget) reserveFree() int { return b.reserve - b.reserveUsed() }
func (b *nodeBudget) sharedFree() int  { return b.cores - b.reserve - b.sharedUsed() }

// borrowedCores returns the reserve cores held by CPU jobs (preemptible).
func (b *nodeBudget) borrowedCores() int {
	total := 0
	for _, d := range b.cpuDraws {
		total += d.fromReserve
	}
	return total
}

// borrowers lists CPU jobs holding reserve cores, largest borrowers first
// (ties by ID) so preemption frees cores with the fewest aborts.
func (b *nodeBudget) borrowers() []job.ID {
	ids := make([]job.ID, 0, len(b.cpuDraws))
	//coda:ordered-ok collected IDs are fully ordered by the sort below
	for id, d := range b.cpuDraws {
		if d.fromReserve > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		a, c := b.cpuDraws[ids[i]], b.cpuDraws[ids[j]]
		if a.fromReserve != c.fromReserve {
			return a.fromReserve > c.fromReserve
		}
		return ids[i] < ids[j]
	})
	return ids
}

// chargeGPU books cores for a GPU job: reserve first, then shared.
// availableOnly charges nothing and reports false when the pools cannot
// cover the request.
func (b *nodeBudget) chargeGPU(id job.ID, cores int) bool {
	if _, ok := b.gpuDraws[id]; ok {
		return false
	}
	r := min(cores, b.reserveFree())
	if cores-r > b.sharedFree() {
		return false
	}
	b.gpuDraws[id] = draw{fromReserve: r, fromShared: cores - r}
	return true
}

// chargeCPU books cores for a CPU job from the shared pool, borrowing from
// the reserve only when allowBorrow is set.
func (b *nodeBudget) chargeCPU(id job.ID, cores int, allowBorrow bool) bool {
	if _, ok := b.cpuDraws[id]; ok {
		return false
	}
	s := min(cores, b.sharedFree())
	rest := cores - s
	if rest > 0 && (!allowBorrow || rest > b.reserveFree()) {
		return false
	}
	b.cpuDraws[id] = draw{fromShared: s, fromReserve: rest}
	return true
}

// release frees whatever the job drew.
func (b *nodeBudget) release(id job.ID) {
	delete(b.gpuDraws, id)
	delete(b.cpuDraws, id)
}

// resize rebooks a job's cores. GPU jobs grow into the reserve first;
// shrinks return shared cores first (keeping the reserve for GPU work when
// the job is a CPU job, and vice versa). Reports false (unchanged) when
// the pools cannot cover growth.
func (b *nodeBudget) resize(id job.ID, newCores int) bool {
	if d, ok := b.gpuDraws[id]; ok {
		return b.resizeDraw(b.gpuDraws, id, d, newCores, true)
	}
	if d, ok := b.cpuDraws[id]; ok {
		return b.resizeDraw(b.cpuDraws, id, d, newCores, false)
	}
	return false
}

func (b *nodeBudget) resizeDraw(m map[job.ID]draw, id job.ID, d draw, newCores int, preferReserve bool) bool {
	if newCores <= 0 {
		return false
	}
	delta := newCores - d.total()
	switch {
	case delta == 0:
		return true
	case delta > 0:
		var first, second *int
		if preferReserve {
			first, second = &d.fromReserve, &d.fromShared
		} else {
			first, second = &d.fromShared, &d.fromReserve
		}
		firstFree, secondFree := b.reserveFree(), b.sharedFree()
		if !preferReserve {
			firstFree, secondFree = secondFree, firstFree
		}
		take := min(delta, firstFree)
		if delta-take > secondFree {
			return false
		}
		*first += take
		*second += delta - take
	default:
		// Shrink: give back the "other" pool's cores first so each array
		// keeps its own budget loaded.
		give := -delta
		var spill, own *int
		if preferReserve {
			spill, own = &d.fromShared, &d.fromReserve
		} else {
			spill, own = &d.fromReserve, &d.fromShared
		}
		back := min(give, *spill)
		*spill -= back
		*own -= give - back
		if *own < 0 {
			return false
		}
	}
	m[id] = d
	return true
}

// checkInvariants validates the pool accounting.
func (b *nodeBudget) checkInvariants() error {
	if b.reserveUsed() > b.reserve {
		return fmt.Errorf("core: reserve overcommitted (%d > %d)", b.reserveUsed(), b.reserve)
	}
	if b.sharedUsed() > b.cores-b.reserve {
		return fmt.Errorf("core: shared pool overcommitted (%d > %d)", b.sharedUsed(), b.cores-b.reserve)
	}
	//coda:ordered-ok error reporting on already-corrupt state; any witness will do
	for id, d := range b.gpuDraws {
		if d.fromReserve < 0 || d.fromShared < 0 || d.total() == 0 {
			return fmt.Errorf("core: gpu job %d has corrupt draw %+v", id, d)
		}
	}
	//coda:ordered-ok error reporting on already-corrupt state; any witness will do
	for id, d := range b.cpuDraws {
		if d.fromReserve < 0 || d.fromShared < 0 || d.total() == 0 {
			return fmt.Errorf("core: cpu job %d has corrupt draw %+v", id, d)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
