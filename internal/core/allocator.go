package core

import (
	"slices"
	"time"

	"github.com/coda-repro/coda/internal/history"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/perfmodel"
	"github.com/coda-repro/coda/internal/sched"
)

// AllocatorConfig parameterizes the adaptive CPU allocator (§V-B, §VI-F).
type AllocatorConfig struct {
	// ProfileStep is one profiling step's length (90 s in the paper).
	ProfileStep time.Duration
	// MaxSteps caps the search ("CODA identifies the optimal core number
	// for all the DNN training jobs in 4 profiling steps").
	MaxSteps int
	// Epsilon is the relative GPU-utilization improvement required to
	// accept a move (must exceed measurement noise).
	Epsilon float64
	// MaxCores bounds any allocation (the node core count).
	MaxCores int
}

// DefaultAllocatorConfig matches the paper's settings.
func DefaultAllocatorConfig() AllocatorConfig {
	return AllocatorConfig{
		ProfileStep: 90 * time.Second,
		MaxSteps:    4,
		Epsilon:     0.015,
		MaxCores:    28,
	}
}

// tunePhase is the search state machine's position.
type tunePhase int

const (
	phaseBaseline tunePhase = iota + 1 // measuring Nstart
	phaseDown                          // probing fewer cores
	phaseUp                            // probing more cores
	phaseDone
)

// tuneState tracks one job's in-flight search.
type tuneState struct {
	j *job.Job
	// bestCores and bestUtil are the best operating point seen so far.
	bestCores int
	bestUtil  float64
	// curCores is what the job currently runs with.
	curCores int
	// step is the current probe distance (doubles while improving).
	step int
	// phase is the state machine position.
	phase tunePhase
	// stepsUsed counts profiling steps (Table II's first column).
	stepsUsed int
	// nextCheck is when the current profiling step completes.
	nextCheck time.Duration
}

// Allocator is the adaptive CPU allocator: it seeds each training job's
// core count from the owner's history and category (§V-B1) and refines it
// with a feedback search over observed GPU utilization (§V-B2).
type Allocator struct {
	cfg     AllocatorConfig
	env     sched.Env
	log     *history.Log
	resize  func(id job.ID, cores int) error
	tuning  map[job.ID]*tuneState
	settled map[job.ID]settleInfo
	// steps keeps every job's profiling-step count permanently (Table II).
	steps map[job.ID]int
	// due is per-tick scratch reused across ticks.
	due []job.ID
}

// settleInfo records a finished search (the eliminator compares live
// utilization against SettledUtil to detect contention-induced drops).
type settleInfo struct {
	// Cores is the tuned core count; Util is the utilization measured at
	// the moment the search settled; Steps is the profiling-step count.
	Cores int
	Util  float64
	Steps int
}

// NewAllocator builds the allocator. resize is the scheduler's
// pool-consistent resize hook (MultiArray.ResizeRunning).
func NewAllocator(cfg AllocatorConfig, log *history.Log, resize func(job.ID, int) error) *Allocator {
	if cfg.ProfileStep <= 0 {
		cfg.ProfileStep = DefaultAllocatorConfig().ProfileStep
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultAllocatorConfig().MaxSteps
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = DefaultAllocatorConfig().Epsilon
	}
	if cfg.MaxCores <= 0 {
		cfg.MaxCores = DefaultAllocatorConfig().MaxCores
	}
	return &Allocator{
		cfg:     cfg,
		log:     log,
		resize:  resize,
		tuning:  make(map[job.ID]*tuneState),
		settled: make(map[job.ID]settleInfo),
		steps:   make(map[job.ID]int),
	}
}

// Bind attaches the environment.
func (a *Allocator) Bind(env sched.Env) { a.env = env }

// clampCores bounds a core count to [1, MaxCores].
func (a *Allocator) clampCores(c int) int {
	if c < 1 {
		return 1
	}
	if c > a.cfg.MaxCores {
		return a.cfg.MaxCores
	}
	return c
}

// InitialCores computes Nstart for a newly submitted training job (§V-B1):
// the largest core count among the owner's historical jobs of the same
// category; the owner's whole history when no category was disclosed; or
// the category's empirical default for first-time owners — then adjusted
// by the optional hints (pipeline −1, large weights −1, complex
// preprocessing +1) and scaled to the job's per-node GPU count.
func (a *Allocator) InitialCores(j *job.Job) int {
	if !j.IsGPU() {
		return j.Request.CPUCores
	}
	// Multi-node jobs never profit from more than two cores (§IV-B2).
	if j.Request.Nodes > 1 {
		return 2
	}
	// History seeds are normalized per GPU so a single large job cannot
	// ratchet every later small job's Nstart upward; the seed scales to
	// the new job's per-node GPU count.
	gpus := float64(j.Request.GPUsPerNode())
	var start int
	if j.Category != job.CategoryNone {
		if perGPU, ok := a.log.LargestCoresPerGPU(j.Tenant, j.Category); ok {
			start = int(perGPU*gpus + 0.5)
		} else {
			start = perfmodel.DefaultStartCores(j.Category) * j.Request.GPUsPerNode()
		}
	} else {
		if perGPU, ok := a.log.LargestCoresPerGPUAnyCategory(j.Tenant); ok {
			start = int(perGPU*gpus + 0.5)
		} else {
			start = perfmodel.DefaultStartCores(job.CategoryNone) * j.Request.GPUsPerNode()
		}
	}
	if j.Hints.HasPipeline {
		start--
	}
	if j.Hints.LargeWeights {
		start--
	}
	if j.Hints.ComplexPreprocess {
		start++
	}
	return a.clampCores(start)
}

// OnStarted begins a tuning session for a training job that just started
// with the given cores.
func (a *Allocator) OnStarted(j *job.Job, cores int) {
	if !j.IsGPU() {
		return
	}
	a.tuning[j.ID] = &tuneState{
		j:         j,
		bestCores: cores,
		curCores:  cores,
		step:      1,
		phase:     phaseBaseline,
		nextCheck: a.env.Now() + a.cfg.ProfileStep,
	}
}

// OnCompleted finalizes a job: its tuned core count is logged for future
// Nstart seeding (§V-A step 5).
func (a *Allocator) OnCompleted(j *job.Job, finalCores int, queueTime, runTime time.Duration) {
	delete(a.tuning, j.ID)
	info, ok := a.settled[j.ID]
	cores := finalCores
	if ok {
		cores = info.Cores
	}
	delete(a.settled, j.ID)
	if cores <= 0 {
		return
	}
	_ = a.log.Add(history.Record{
		JobID:       j.ID,
		Tenant:      j.Tenant,
		Kind:        j.Kind,
		Category:    j.Category,
		Model:       j.Model,
		CPUCores:    cores,
		GPUs:        j.Request.GPUs,
		Nodes:       j.Request.Nodes,
		QueueTime:   queueTime,
		RunTime:     runTime,
		CompletedAt: a.env.Now(),
	})
}

// Forget drops a fault-killed job's tuning state without logging a history
// record: an aborted attempt's profile belongs to a stale placement, and the
// history log must only seed Nstart from runs that actually finished. A
// retried job starts a fresh tuning session via OnStarted.
func (a *Allocator) Forget(id job.ID) {
	delete(a.tuning, id)
	delete(a.settled, id)
}

// Settled reports the tuned operating point of a job, if tuning finished.
func (a *Allocator) Settled(id job.ID) (settleInfo, bool) {
	info, ok := a.settled[id]
	return info, ok
}

// Tuning reports whether a job's search is still running.
func (a *Allocator) Tuning(id job.ID) bool {
	_, ok := a.tuning[id]
	return ok
}

// Tick advances every in-flight search whose profiling step elapsed.
// Jobs are processed in ID order: the environment's utilization readings
// consume a shared noise stream, so iteration order must be deterministic
// for runs to reproduce.
func (a *Allocator) Tick() {
	now := a.env.Now()
	due := a.due[:0]
	//coda:ordered-ok collected IDs are sorted before the searches advance
	for id, st := range a.tuning {
		if now >= st.nextCheck {
			due = append(due, id)
		}
	}
	slices.Sort(due)
	a.due = due
	for _, id := range due {
		if st, ok := a.tuning[id]; ok {
			a.advance(id, st)
		}
	}
}

// tryResize moves a job to the probe core count; a failed resize (pool
// full) reports false and the search falls back to the best point.
func (a *Allocator) tryResize(id job.ID, st *tuneState, cores int) bool {
	cores = a.clampCores(cores)
	if cores == st.curCores {
		return false
	}
	if err := a.resize(id, cores); err != nil {
		return false
	}
	st.curCores = cores
	return true
}

// settle ends the search at the best seen point.
func (a *Allocator) settle(id job.ID, st *tuneState) {
	if st.curCores != st.bestCores {
		// Best effort: if moving back fails, stay where we are.
		if err := a.resize(id, st.bestCores); err == nil {
			st.curCores = st.bestCores
		}
	}
	a.settled[id] = settleInfo{Cores: st.curCores, Util: st.bestUtil, Steps: st.stepsUsed}
	a.steps[id] = st.stepsUsed
	delete(a.tuning, id)
}

// ProfileSteps reports how many profiling steps a job's search used
// (Table II); ok is false if the job never settled.
func (a *Allocator) ProfileSteps(id job.ID) (int, bool) {
	n, ok := a.steps[id]
	return n, ok
}

// advance runs one profiling-step transition of the search state machine:
// measure the baseline at Nstart, then probe smaller allocations first and
// larger ones second (§V-B2), doubling the probe distance while it keeps
// improving and settling at the best point otherwise.
func (a *Allocator) advance(id job.ID, st *tuneState) {
	util, err := a.env.GPUUtil(id)
	if err != nil {
		// The job is gone (completed mid-step); drop the session.
		delete(a.tuning, id)
		return
	}
	st.stepsUsed++
	st.nextCheck = a.env.Now() + a.cfg.ProfileStep

	improved := util > st.bestUtil*(1+a.cfg.Epsilon)
	if improved || st.phase == phaseBaseline {
		if util > st.bestUtil {
			st.bestUtil = util
		}
		st.bestCores = st.curCores
	}

	if st.stepsUsed >= a.cfg.MaxSteps {
		a.settle(id, st)
		return
	}

	switch st.phase {
	case phaseBaseline:
		// First probe direction: fewer cores ("The CPU allocator first
		// evaluates the smaller core number", §V-B2).
		st.phase = phaseDown
		if !a.tryResize(id, st, st.bestCores-st.step) {
			// Cannot shrink below 1: probe upward instead.
			st.phase = phaseUp
			if !a.tryResize(id, st, st.bestCores+st.step) {
				a.settle(id, st)
			}
		}
	case phaseDown:
		if improved {
			st.step *= 2
			if !a.tryResize(id, st, st.bestCores-st.step) {
				a.settle(id, st)
			}
			return
		}
		// Shrinking hurt: probe the opposite direction from the best point.
		st.phase = phaseUp
		st.step = 1
		if !a.tryResize(id, st, st.bestCores+st.step) {
			a.settle(id, st)
		}
	case phaseUp:
		if improved {
			st.step *= 2
			if !a.tryResize(id, st, st.bestCores+st.step) {
				a.settle(id, st)
			}
			return
		}
		a.settle(id, st)
	default:
		a.settle(id, st)
	}
}
