package core

import (
	"reflect"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/history"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sim"
	"github.com/coda-repro/coda/internal/trace"
)

// TestCODADeterminism: two identical CODA runs over a mixed trace produce
// identical summaries and identical per-job outcomes.
func TestCODADeterminism(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.CPUJobs, cfg.GPUJobs = 300, 100
	cfg.Duration = 24 * time.Hour
	run := func() *sim.Result {
		jobs, err := trace.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, _ := runCoda(t, DefaultConfig(), testOptions(), jobs)
		return res
	}
	a, b := run(), run()
	if a.Summarize() != b.Summarize() {
		t.Fatalf("summaries differ:\n%+v\n%+v", a.Summarize(), b.Summarize())
	}
	for id, js := range a.Jobs {
		other := b.Jobs[id]
		if js.FinalCores != other.FinalCores || js.FirstStart != other.FirstStart ||
			js.CompletedAt != other.CompletedAt {
			t.Fatalf("job %d outcome differs:\n%+v\n%+v", id, js, other)
		}
	}
}

// TestShortJobCompletesMidProfiling: a training job shorter than one
// profiling step completes cleanly; the allocator drops the session
// without touching other state.
func TestShortJobCompletesMidProfiling(t *testing.T) {
	j := gpuJob(1, 0, "resnet50", 2, 1, 1, 45*time.Second) // < 90 s step
	res, s := runCoda(t, DefaultConfig(), testOptions(), []*job.Job{j})
	if !res.Jobs[1].Completed {
		t.Fatal("short job did not complete")
	}
	if s.Allocator().Tuning(1) {
		t.Error("tuning session leaked after completion")
	}
	if _, ok := s.Allocator().ProfileSteps(1); ok {
		t.Error("short job should never have settled")
	}
}

// TestPreemptedJobRestartsFromHead: a preempted CPU job re-enters the
// array head and restarts before later CPU arrivals of the same tenant.
func TestPreemptedJobRestartsFromHead(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 1
	opts.Cluster.CoresPerNode = 12
	opts.Cluster.GPUsPerNode = 2
	cfg := DefaultConfig()
	cfg.Array.ReserveCores = 8
	cfg.RebalanceEvery = 0

	jobs := []*job.Job{
		// Fill the node: 4 shared + 8 borrowed.
		cpuJob(1, 0, 2, 4, 3*time.Hour),
		cpuJob(2, 0, 2, 4, 3*time.Hour),
		cpuJob(3, 0, 2, 4, 3*time.Hour),
		// The training job forces a preemption...
		gpuJob(4, 10*time.Minute, "transformer", 2, 1, 1, 30*time.Minute),
		// ...and a later CPU job from the same tenant queues behind the
		// requeued victim.
		cpuJob(5, 11*time.Minute, 2, 4, time.Hour),
	}
	res, _ := runCoda(t, cfg, opts, jobs)
	if res.Preemptions == 0 {
		t.Fatal("expected a preemption")
	}
	// Find the victim: the CPU job with a preemption count.
	var victim job.ID
	for id := job.ID(1); id <= 3; id++ {
		if res.Jobs[id].Preemptions > 0 {
			victim = id
		}
	}
	if victim == 0 {
		t.Fatal("no victim recorded")
	}
	if !res.Jobs[victim].Completed || !res.Jobs[5].Completed {
		t.Fatal("jobs did not complete")
	}
	// The victim resumed when the training job finished; job 5 had to wait
	// at least as long.
	if res.Jobs[5].CompletedAt < res.Jobs[victim].CompletedAt {
		t.Errorf("later arrival (job 5, done %v) finished before the requeued victim (job %d, done %v)",
			res.Jobs[5].CompletedAt, victim, res.Jobs[victim].CompletedAt)
	}
}

// TestDisablePreemptionKeepsBorrowers: with preemption off, a training job
// that needs borrowed cores waits for the borrower instead of aborting it.
func TestDisablePreemptionKeepsBorrowers(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 1
	opts.Cluster.CoresPerNode = 12
	opts.Cluster.GPUsPerNode = 2
	cfg := DefaultConfig()
	cfg.Array.ReserveCores = 8
	cfg.RebalanceEvery = 0
	cfg.DisablePreemption = true

	jobs := []*job.Job{
		cpuJob(1, 0, 2, 4, 2*time.Hour),
		cpuJob(2, 0, 2, 4, 2*time.Hour),
		cpuJob(3, 0, 2, 4, 2*time.Hour),
		gpuJob(4, 30*time.Minute, "resnet50", 3, 1, 1, time.Hour),
	}
	res, _ := runCoda(t, cfg, opts, jobs)
	if res.Preemptions != 0 {
		t.Errorf("preemptions = %d with preemption disabled", res.Preemptions)
	}
	for id := job.ID(1); id <= 3; id++ {
		if res.Jobs[id].Preemptions != 0 {
			t.Errorf("job %d was preempted", id)
		}
	}
	if !res.Jobs[4].Completed {
		t.Fatal("training job never completed")
	}
}

// TestCODAOnHeterogeneousCluster: CPU-only nodes absorb CPU jobs while the
// GPU node serves training; invariants hold.
func TestCODAOnHeterogeneousCluster(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 1
	opts.Cluster.CPUOnlyNodes = 2
	s, err := NewForCluster(DefaultConfig(), opts.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{
		gpuJob(1, 0, "resnet50", 3, 1, 1, time.Hour),
		cpuJob(2, 0, 2, 20, 2*time.Hour), // only fits a whole node's budget
		cpuJob(3, 0, 3, 20, 2*time.Hour),
	}
	simulator, err := sim.New(opts, s, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Arrays().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for id := job.ID(1); id <= 3; id++ {
		if !res.Jobs[id].Completed {
			t.Errorf("job %d incomplete", id)
		}
	}
	// The 20-core CPU jobs cannot share the GPU node with its 14-core
	// reserve: they must be on the CPU-only nodes.
	if reflect.DeepEqual(res.Jobs[2], res.Jobs[3]) {
		t.Error("sanity: distinct stats expected")
	}
}

func TestSetHistoryWarmStart(t *testing.T) {
	log := history.NewLog()
	if err := log.Add(history.Record{
		JobID: 99, Tenant: 1, Kind: job.KindGPUTraining,
		Category: job.CategoryCV, Model: "resnet50", CPUCores: 7, GPUs: 1,
	}); err != nil {
		t.Fatal(err)
	}
	s := newCoda(t, DefaultConfig(), testOptions())
	s.SetHistory(log)
	s.SetHistory(nil) // nil is a no-op, not a reset
	j := gpuJob(1, 0, "resnet50", 2, 1, 1, time.Hour)
	if got := s.Allocator().InitialCores(j); got != 7 {
		t.Errorf("warm-started Nstart = %d, want 7 from history", got)
	}
}

func TestMultiArrayAccessors(t *testing.T) {
	m, err := NewMultiArray(DefaultArrayConfig(), 2, 28, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.GPUJobsPending() {
		t.Error("fresh scheduler should have no pending GPU jobs")
	}
	g := gpuJob(1, 0, "resnet50", 2, 1, 1, time.Hour)
	m.EnqueueGPU(g, 3)
	m.EnqueueCPU(cpuJob(2, 0, 1, 2, time.Hour))
	if !m.GPUJobsPending() {
		t.Error("GPU job should be pending")
	}
	gpu, cpu := m.QueueLens()
	if gpu != 1 || cpu != 1 {
		t.Errorf("QueueLens = %d, %d; want 1, 1", gpu, cpu)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Zero-core desired falls back to the request at start time.
	m.EnqueueGPU(gpuJob(3, 0, "resnet50", 2, 1, 1, time.Hour), 0)
}

func TestNewEliminatorConfigDefaults(t *testing.T) {
	m, err := NewMultiArray(DefaultArrayConfig(), 1, 28, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocator(DefaultAllocatorConfig(), history.NewLog(), m.ResizeRunning)
	e := NewEliminator(EliminatorConfig{Threshold: 2, Release: 0.9, UtilDropTolerance: -1}, a, m)
	def := DefaultEliminatorConfig()
	if e.cfg.Threshold != def.Threshold || e.cfg.Release != def.Release ||
		e.cfg.UtilDropTolerance != def.UtilDropTolerance || e.cfg.CheckInterval != def.CheckInterval {
		t.Errorf("invalid config not defaulted: %+v", e.cfg)
	}
}
