package core

import (
	"container/list"
	"fmt"
	"slices"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/fair"
	"github.com/coda-repro/coda/internal/history"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sched"
)

// ArrayConfig sizes the multi-array resource split (§V-C).
type ArrayConfig struct {
	// ReserveCores is the per-node core count reserved for the GPU resource
	// array ("The GPU resource array reserves some CPU resources for GPU
	// jobs in this array").
	ReserveCores int
	// FourGNodeFraction is the fraction of nodes assigned to the 4-GPU
	// sub-array.
	FourGNodeFraction float64
}

// DefaultArrayConfig returns the initial split used before historical
// statistics accumulate.
func DefaultArrayConfig() ArrayConfig {
	return ArrayConfig{ReserveCores: 14, FourGNodeFraction: 0.3}
}

// Validate checks the configuration against a node shape.
func (c ArrayConfig) Validate(coresPerNode int) error {
	if c.ReserveCores < 0 || c.ReserveCores > coresPerNode {
		return fmt.Errorf("core: reserve %d out of [0,%d]", c.ReserveCores, coresPerNode)
	}
	if c.FourGNodeFraction < 0 || c.FourGNodeFraction > 1 {
		return fmt.Errorf("core: 4-GPU node fraction %g out of [0,1]", c.FourGNodeFraction)
	}
	return nil
}

// LargeJobGPUs mirrors history.LargeJobGPUs: jobs requesting this many
// GPUs or more belong to the 4-GPU sub-array.
const LargeJobGPUs = history.LargeJobGPUs

// runInfo tracks a job the multi-array scheduler started.
type runInfo struct {
	j     *job.Job
	alloc job.Allocation
}

// MultiArray is the paper's multi-array job scheduler: a CPU resource
// array and a GPU resource array (split into 1-GPU and 4-GPU sub-arrays),
// each running DRF internally, with cross-array borrowing and preemption.
type MultiArray struct {
	env     sched.Env
	cfg     ArrayConfig
	budgets []*nodeBudget
	// gpuNodes is the count of GPU nodes: budgets[0:gpuNodes] have GPUs,
	// the rest are CPU-only nodes (§VI-G heterogeneous clusters).
	gpuNodes  int
	fourG     []int // node IDs of the 4-GPU sub-array
	oneG      []int // node IDs of the 1-GPU sub-array
	cpuAcc    *fair.Accountant
	gpuAcc    *fair.Accountant
	cpuQueues map[job.TenantID]*list.List
	gpuQueues map[job.TenantID]*list.List
	// desired is the allocator-chosen core count for pending GPU jobs.
	desired map[job.ID]int
	running map[job.ID]*runInfo
	// DisablePreemption stops reserve reclaims (ablation knob).
	DisablePreemption bool
	// preemptions counts cross-array reclaims (for reports).
	preemptions int

	// Per-pass scratch reused across drains (a scheduler is single-threaded).
	blocked    map[job.TenantID]bool
	tenants    []job.TenantID
	candidates []job.TenantID
	nodeOrder  []int
	cands      []gpuCandidate
}

// gpuCandidate is a feasible node for a GPU placement pass.
type gpuCandidate struct {
	nid, freeGPUs, pref int
}

// NewMultiArray builds the scheduler for a cluster of nodes × coresPerNode
// × gpusPerNode.
func NewMultiArray(cfg ArrayConfig, nodes, coresPerNode, gpusPerNode int) (*MultiArray, error) {
	return NewMultiArrayForCluster(cfg, cluster.Config{
		Nodes:        nodes,
		CoresPerNode: coresPerNode,
		GPUsPerNode:  gpusPerNode,
	})
}

// NewMultiArrayForCluster builds the scheduler for a possibly
// heterogeneous cluster (§VI-G: "Some larger private clusters maybe
// composed of both GPU nodes and CPU nodes"). CPU-only nodes carry no
// reserve — their cores all belong to the CPU array — and stay out of the
// GPU sub-arrays.
func NewMultiArrayForCluster(cfg ArrayConfig, cc cluster.Config) (*MultiArray, error) {
	if cc.Nodes <= 0 || cc.CoresPerNode <= 0 || cc.GPUsPerNode < 0 || cc.CPUOnlyNodes < 0 {
		return nil, fmt.Errorf("core: bad cluster shape %d+%d nodes, %d cores, %d gpus",
			cc.Nodes, cc.CPUOnlyNodes, cc.CoresPerNode, cc.GPUsPerNode)
	}
	if err := cfg.Validate(cc.CoresPerNode); err != nil {
		return nil, err
	}
	total := cc.TotalNodes()
	m := &MultiArray{
		cfg:       cfg,
		budgets:   make([]*nodeBudget, total),
		gpuNodes:  cc.Nodes,
		cpuQueues: make(map[job.TenantID]*list.List),
		gpuQueues: make(map[job.TenantID]*list.List),
		desired:   make(map[job.ID]int),
		running:   make(map[job.ID]*runInfo),
	}
	for i := range m.budgets {
		reserve := cfg.ReserveCores
		if i >= cc.Nodes {
			reserve = 0 // CPU-only node: the whole node is CPU-array budget
		}
		b, err := newNodeBudget(cc.CoresPerNode, reserve)
		if err != nil {
			return nil, err
		}
		m.budgets[i] = b
	}
	fourGCount := int(float64(cc.Nodes)*cfg.FourGNodeFraction + 0.5)
	if cc.GPUsPerNode < LargeJobGPUs {
		fourGCount = 0 // nodes cannot host 4-GPU-per-node jobs anyway
	}
	for i := 0; i < cc.Nodes; i++ {
		if i < fourGCount {
			m.fourG = append(m.fourG, i)
		} else {
			m.oneG = append(m.oneG, i)
		}
	}
	sharedTotal := float64(cc.Nodes*(cc.CoresPerNode-cfg.ReserveCores) + cc.CPUOnlyNodes*cc.CoresPerNode)
	if sharedTotal <= 0 {
		sharedTotal = float64(total) // degenerate all-reserved split
	}
	var err error
	m.cpuAcc, err = fair.NewAccountant(fair.Resources{CPU: sharedTotal, GPU: 0}, fair.DominantCPU)
	if err != nil {
		return nil, err
	}
	gpuTotal := float64(cc.Nodes * cc.GPUsPerNode)
	if cc.Nodes*cc.GPUsPerNode == 0 {
		gpuTotal = 1
	}
	m.gpuAcc, err = fair.NewAccountant(
		fair.Resources{CPU: float64(total * cc.CoresPerNode), GPU: gpuTotal},
		fair.DominantGPU,
	)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Bind attaches the environment.
func (m *MultiArray) Bind(env sched.Env) { m.env = env }

// Preemptions returns the cross-array reclaim count.
func (m *MultiArray) Preemptions() int { return m.preemptions }

// EnqueueGPU adds a training job with the allocator's chosen core count.
func (m *MultiArray) EnqueueGPU(j *job.Job, desiredCores int) {
	if desiredCores < 1 {
		desiredCores = 1
	}
	m.desired[j.ID] = desiredCores
	m.pushBack(m.gpuQueues, j)
}

// EnqueueCPU adds a CPU job to the CPU array.
func (m *MultiArray) EnqueueCPU(j *job.Job) {
	m.pushBack(m.cpuQueues, j)
}

// RequeueCPUFront puts a preempted CPU job back at its array head (§V-C).
func (m *MultiArray) RequeueCPUFront(j *job.Job) {
	q := m.queueFor(m.cpuQueues, j.Tenant)
	q.PushFront(j)
}

// RequeueGPUFront puts a fault-killed training job back at its array head
// with the given desired core count: a job that already waited once does
// not queue behind later arrivals after a crash that was not its fault.
func (m *MultiArray) RequeueGPUFront(j *job.Job, desiredCores int) {
	if desiredCores < 1 {
		desiredCores = 1
	}
	m.desired[j.ID] = desiredCores
	m.queueFor(m.gpuQueues, j.Tenant).PushFront(j)
}

func (m *MultiArray) pushBack(queues map[job.TenantID]*list.List, j *job.Job) {
	m.queueFor(queues, j.Tenant).PushBack(j)
}

func (m *MultiArray) queueFor(queues map[job.TenantID]*list.List, t job.TenantID) *list.List {
	q, ok := queues[t]
	if !ok {
		q = list.New()
		queues[t] = q
	}
	return q
}

// OnKilled releases a fault-killed job's bookkeeping. The cleanup is the
// completion cleanup: budgets, run info, desired cores and fair-share
// charges all go; the caller decides whether a retry clone is requeued.
func (m *MultiArray) OnKilled(j *job.Job) { m.OnCompleted(j) }

// RemoveQueued removes a still-queued job from its array, reporting whether
// it was found. Queued jobs hold no budgets or fair-share charges yet, so
// only the queue entry and the desired-core seed go. Running jobs are not
// touched — cancel those through the OnKilled path.
func (m *MultiArray) RemoveQueued(j *job.Job) bool {
	queues := m.cpuQueues
	if j.IsGPU() {
		queues = m.gpuQueues
	}
	q, ok := queues[j.Tenant]
	if !ok {
		return false
	}
	for elem := q.Front(); elem != nil; elem = elem.Next() {
		if qj, ok := elem.Value.(*job.Job); ok && qj.ID == j.ID {
			q.Remove(elem)
			delete(m.desired, j.ID)
			return true
		}
	}
	return false
}

// OnCompleted releases a finished job's bookkeeping.
func (m *MultiArray) OnCompleted(j *job.Job) {
	info, ok := m.running[j.ID]
	if !ok {
		return
	}
	for _, nid := range info.alloc.NodeIDs {
		m.budgets[nid].release(j.ID)
	}
	delete(m.running, j.ID)
	delete(m.desired, j.ID)
	if j.IsGPU() {
		_ = m.gpuAcc.Refund(j.ID)
	} else {
		_ = m.cpuAcc.Refund(j.ID)
	}
}

// RunningAlloc reports a running job's allocation.
func (m *MultiArray) RunningAlloc(id job.ID) (job.Allocation, bool) {
	info, ok := m.running[id]
	if !ok {
		return job.Allocation{}, false
	}
	return info.alloc.Clone(), true
}

// ResizeRunning changes a running job's per-node cores, keeping pool
// bookkeeping, cluster state and fair-share accounting consistent.
func (m *MultiArray) ResizeRunning(id job.ID, newCores int) error {
	info, ok := m.running[id]
	if !ok {
		return fmt.Errorf("core: job %d is not running", id)
	}
	old := info.alloc.CPUCores
	if newCores == old {
		return nil
	}
	// Book pools first (pool headroom implies cluster headroom).
	resized := make([]int, 0, len(info.alloc.NodeIDs))
	for _, nid := range info.alloc.NodeIDs {
		if !m.budgets[nid].resize(id, newCores) {
			for _, done := range resized {
				m.budgets[done].resize(id, old)
			}
			return fmt.Errorf("core: node %d cannot host %d cores for job %d", nid, newCores, id)
		}
		resized = append(resized, nid)
	}
	if err := m.env.ResizeJob(id, newCores); err != nil {
		for _, done := range resized {
			m.budgets[done].resize(id, old)
		}
		return err
	}
	info.alloc.CPUCores = newCores
	acc := m.cpuAcc
	if info.j.IsGPU() {
		acc = m.gpuAcc
	}
	_ = acc.Adjust(id, fair.Resources{
		CPU: float64(info.alloc.TotalCPUCores()),
		GPU: float64(info.alloc.TotalGPUs()),
	})
	return nil
}

// pendingTenants lists tenants with non-empty queues, sorted by tenant ID,
// into the reusable m.tenants scratch (valid until the next call).
// The order is load-bearing: the candidate list feeds DRF's PoorestTenant,
// and handing it Go's randomized map order would make same-seed replay
// depend on every downstream consumer re-sorting correctly. Sorting here
// makes the candidate order seed-stable by construction (the determinism
// invariant coda-lint enforces).
func (m *MultiArray) pendingTenants(queues map[job.TenantID]*list.List) []job.TenantID {
	out := m.tenants[:0]
	//coda:ordered-ok collected tenant IDs are sorted before return
	for t, q := range queues {
		if q.Len() > 0 {
			out = append(out, t)
		}
	}
	slices.Sort(out)
	m.tenants = out
	return out
}

// GPUJobsPending reports whether any training job waits.
func (m *MultiArray) GPUJobsPending() bool {
	for _, q := range m.gpuQueues {
		if q.Len() > 0 {
			return true
		}
	}
	return false
}

// Drain runs both arrays' scheduling passes: GPU jobs first (they hold the
// scarce resource and may preempt borrowed cores), then CPU jobs.
func (m *MultiArray) Drain() {
	m.drainGPU()
	m.drainCPU()
}

// drainGPU progressively fills the GPU arrays in DRF order.
func (m *MultiArray) drainGPU() {
	if m.blocked == nil {
		m.blocked = make(map[job.TenantID]bool)
	}
	blocked := m.blocked
	clear(blocked)
	for {
		candidates := m.candidates[:0]
		for _, t := range m.pendingTenants(m.gpuQueues) {
			if !blocked[t] {
				candidates = append(candidates, t)
			}
		}
		m.candidates = candidates
		tenant, ok := m.gpuAcc.PoorestTenant(candidates)
		if !ok {
			return
		}
		q := m.gpuQueues[tenant]
		elem := q.Front()
		j, okJob := elem.Value.(*job.Job)
		if !okJob {
			q.Remove(elem)
			continue
		}
		if m.startGPU(j) {
			q.Remove(elem)
			continue
		}
		blocked[tenant] = true
	}
}

// drainCPU progressively fills the CPU array in DRF order. CPU jobs may
// always borrow idle reserve cores; arriving GPU jobs reclaim them by
// preemption ("If CPU jobs burst and the GPU resource array is relatively
// idle, the multi-array scheduler allows CPU jobs to preempt the reserved
// cores... When a GPU job arrives and needs the preempted CPU cores, CODA
// aborts the running CPU job", §V-C).
func (m *MultiArray) drainCPU() {
	allowBorrow := true
	if m.blocked == nil {
		m.blocked = make(map[job.TenantID]bool)
	}
	blocked := m.blocked
	clear(blocked)
	for {
		candidates := m.candidates[:0]
		for _, t := range m.pendingTenants(m.cpuQueues) {
			if !blocked[t] {
				candidates = append(candidates, t)
			}
		}
		m.candidates = candidates
		tenant, ok := m.cpuAcc.PoorestTenant(candidates)
		if !ok {
			return
		}
		q := m.cpuQueues[tenant]
		elem := q.Front()
		j, okJob := elem.Value.(*job.Job)
		if !okJob {
			q.Remove(elem)
			continue
		}
		if m.startCPU(j, allowBorrow) {
			q.Remove(elem)
			continue
		}
		blocked[tenant] = true
	}
}

// gpuNodeOrder returns the placement preference for a training job: its
// own sub-array first, the other as fallback (§V-C). The returned slice is
// the reusable m.nodeOrder scratch, valid until the next call.
func (m *MultiArray) gpuNodeOrder(j *job.Job) []int {
	large := j.Request.GPUs >= LargeJobGPUs
	order := m.nodeOrder[:0]
	if large {
		order = append(order, m.fourG...)
		order = append(order, m.oneG...)
	} else {
		order = append(order, m.oneG...)
		order = append(order, m.fourG...)
	}
	m.nodeOrder = order
	return order
}

// startGPU attempts to place and start a training job with its
// allocator-chosen core count, preempting borrowed reserve cores if that
// is what stands in the way. When even preemption cannot fund the desired
// cores, the job starts slimmer — an idle GPU contributes zero utilization
// while a core-starved training job still makes progress, and the adaptive
// allocator grows the job back once cores free up (§V-B2).
func (m *MultiArray) startGPU(j *job.Job) bool {
	desired := m.desired[j.ID]
	if desired < 1 {
		desired = j.Request.CPUCores
	}
	for cores := desired; cores >= 1; cores = nextSlimmer(cores) {
		if m.startGPUAt(j, cores) {
			return true
		}
	}
	return false
}

// nextSlimmer steps the fallback core ladder: halve, then floor at 1.
func nextSlimmer(cores int) int {
	if cores <= 1 {
		return 0
	}
	next := cores / 2
	if next < 1 {
		next = 1
	}
	return next
}

// startGPUAt tries one specific core count.
func (m *MultiArray) startGPUAt(j *job.Job, cores int) bool {
	gpus := j.Request.GPUsPerNode()
	order := m.gpuNodeOrder(j)
	ownLen := len(m.oneG)
	if j.Request.GPUs >= LargeJobGPUs {
		ownLen = len(m.fourG)
	}

	pickNodes := func(withPreempt bool) []int {
		m.env.Cluster().NotePlacementQuery()
		// Collect all feasible nodes in preference order, then pack
		// best-fit (fewest free GPUs first) so large GPU holes survive for
		// 4-GPU jobs — the multi-array design's anti-fragmentation goal.
		cands := m.cands[:0]
		for pref, nid := range order {
			n, err := m.env.Cluster().Node(nid)
			if err != nil || n.FreeGPUs() < gpus {
				continue
			}
			b := m.budgets[nid]
			headroom := b.reserveFree() + b.sharedFree()
			if withPreempt {
				headroom += b.borrowedCores()
			}
			if headroom < cores {
				continue
			}
			cands = append(cands, gpuCandidate{nid: nid, freeGPUs: n.FreeGPUs(), pref: pref})
		}
		m.cands = cands
		if len(cands) < j.Request.Nodes {
			return nil
		}
		// breaksHole marks placements that would split an intact >= 4-GPU
		// hole, the resource large jobs need; keep such holes whole unless
		// nothing else fits.
		breaksHole := func(c gpuCandidate) bool {
			return gpus < LargeJobGPUs &&
				c.freeGPUs >= LargeJobGPUs && c.freeGPUs-gpus < LargeJobGPUs
		}
		slices.SortFunc(cands, func(a, b gpuCandidate) int {
			// Stay within the preferred sub-array region first, avoid
			// breaking 4-GPU holes second, then pack best-fit. The nid
			// tie-break makes this a total order, so the sort is
			// deterministic regardless of algorithm.
			aOwn, bOwn := a.pref < ownLen, b.pref < ownLen
			if aOwn != bOwn {
				if aOwn {
					return -1
				}
				return 1
			}
			aBreak, bBreak := breaksHole(a), breaksHole(b)
			if aBreak != bBreak {
				if bBreak {
					return -1
				}
				return 1
			}
			if a.freeGPUs != b.freeGPUs {
				return a.freeGPUs - b.freeGPUs
			}
			return a.nid - b.nid
		})
		nodes := make([]int, 0, j.Request.Nodes)
		for _, c := range cands[:j.Request.Nodes] {
			nodes = append(nodes, c.nid)
		}
		return nodes
	}

	nodes := pickNodes(false)
	if nodes == nil {
		if m.DisablePreemption {
			return false
		}
		nodes = pickNodes(true)
		if nodes == nil {
			return false
		}
		// Reclaim borrowed cores: "When a GPU job arrives and needs the
		// preempted CPU cores, CODA aborts the running CPU job" (§V-C).
		for _, nid := range nodes {
			if !m.reclaimNode(nid, cores) {
				return false
			}
		}
	}

	alloc := job.Allocation{NodeIDs: nodes, CPUCores: cores, GPUs: gpus}
	for _, nid := range nodes {
		if !m.budgets[nid].chargeGPU(j.ID, cores) {
			for _, done := range nodes {
				m.budgets[done].release(j.ID)
			}
			return false
		}
	}
	if err := m.env.StartJob(j.ID, alloc); err != nil {
		for _, nid := range nodes {
			m.budgets[nid].release(j.ID)
		}
		return false
	}
	m.running[j.ID] = &runInfo{j: j, alloc: alloc}
	_ = m.gpuAcc.Charge(j.ID, j.Tenant, fair.Resources{
		CPU: float64(alloc.TotalCPUCores()),
		GPU: float64(alloc.TotalGPUs()),
	})
	return true
}

// reclaimNode preempts borrowers on a node until the pools can cover
// `cores` more. Preempted jobs re-enter the CPU array head.
func (m *MultiArray) reclaimNode(nid int, cores int) bool {
	b := m.budgets[nid]
	for _, victim := range b.borrowers() {
		if b.reserveFree()+b.sharedFree() >= cores {
			break
		}
		info, ok := m.running[victim]
		if !ok {
			continue
		}
		clone, err := m.env.PreemptJob(victim)
		if err != nil {
			continue
		}
		for _, vn := range info.alloc.NodeIDs {
			m.budgets[vn].release(victim)
		}
		delete(m.running, victim)
		_ = m.cpuAcc.Refund(victim)
		m.preemptions++
		m.RequeueCPUFront(clone)
	}
	return b.reserveFree()+b.sharedFree() >= cores
}

// startCPU attempts to place and start a CPU job. Nodes are scanned from
// the highest ID (the 1-GPU sub-array's tail) so the 4-GPU sub-array's
// shared pools stay emptier, keeping large-job placements cheap.
func (m *MultiArray) startCPU(j *job.Job, allowBorrow bool) bool {
	m.env.Cluster().NotePlacementQuery()
	cores := j.Request.CPUCores
	for nid := len(m.budgets) - 1; nid >= 0; nid-- {
		n, err := m.env.Cluster().Node(nid)
		if err != nil || n.FreeCores() < cores {
			continue
		}
		b := m.budgets[nid]
		if b.sharedFree() < cores && !(allowBorrow && b.sharedFree()+b.reserveFree() >= cores) {
			continue
		}
		if !b.chargeCPU(j.ID, cores, allowBorrow) {
			continue
		}
		alloc := job.Allocation{NodeIDs: []int{nid}, CPUCores: cores}
		if err := m.env.StartJob(j.ID, alloc); err != nil {
			b.release(j.ID)
			continue
		}
		m.running[j.ID] = &runInfo{j: j, alloc: alloc}
		_ = m.cpuAcc.Charge(j.ID, j.Tenant, fair.Resources{CPU: float64(cores)})
		return true
	}
	return false
}

// QueueLens reports pending counts (gpu, cpu) for tests and metrics.
func (m *MultiArray) QueueLens() (gpu, cpu int) {
	for _, q := range m.gpuQueues {
		gpu += q.Len()
	}
	for _, q := range m.cpuQueues {
		cpu += q.Len()
	}
	return gpu, cpu
}

// Rebalance adapts the per-node reserve to historical statistics: the GPU
// array reserves roughly the mean tuned core demand per GPU times the node
// GPU count ("This part of the computing resources is derived from
// historical statistical information", §V-C). The reserve only moves
// within what current occupancy allows.
func (m *MultiArray) Rebalance(stats history.Stats, gpusPerNode int) {
	if stats.GPUJobs == 0 || stats.MeanCoresPerGPU <= 0 {
		return
	}
	// Reserve enough cores to feed a node full of GPUs at the historical
	// per-GPU CPU demand, plus one spare for headroom.
	target := int(stats.MeanCoresPerGPU*float64(gpusPerNode)+0.5) + 1
	for nid, b := range m.budgets {
		if nid >= m.gpuNodes {
			continue // CPU-only nodes never reserve cores for GPU jobs
		}
		want := target
		if want < 2 {
			want = 2
		}
		if max := b.cores - 2; want > max {
			want = max
		}
		// Never cut below what GPU jobs + borrowers already use, and never
		// grow beyond what the shared pool's occupancy allows.
		if used := b.reserveUsed(); want < used {
			want = used
		}
		if maxGrow := b.cores - b.sharedUsed(); want > maxGrow {
			want = maxGrow
		}
		b.reserve = want
	}
	// Re-split the GPU sub-arrays: assign the 4-GPU sub-array the share of
	// nodes matching the historical share of GPU demand from large jobs
	// ("The division of the corresponding array is also determined by the
	// statistical information of the historical jobs", §V-C).
	if gpusPerNode >= LargeJobGPUs && stats.LargeGPUShare > 0 {
		fourGCount := int(float64(m.gpuNodes)*stats.LargeGPUShare + 0.5)
		if fourGCount > m.gpuNodes {
			fourGCount = m.gpuNodes
		}
		m.fourG = m.fourG[:0]
		m.oneG = m.oneG[:0]
		for i := 0; i < m.gpuNodes; i++ {
			if i < fourGCount {
				m.fourG = append(m.fourG, i)
			} else {
				m.oneG = append(m.oneG, i)
			}
		}
	}
}

// CheckInvariants validates all node budgets and accountants, and that no
// job sits in a queue while also running — the double-booking a buggy
// requeue path would produce.
func (m *MultiArray) CheckInvariants() error {
	for nid, b := range m.budgets {
		if err := b.checkInvariants(); err != nil {
			return fmt.Errorf("node %d: %w", nid, err)
		}
	}
	if err := m.cpuAcc.CheckInvariants(); err != nil {
		return err
	}
	if err := m.gpuAcc.CheckInvariants(); err != nil {
		return err
	}
	for _, queues := range []map[job.TenantID]*list.List{m.cpuQueues, m.gpuQueues} {
		//coda:ordered-ok error reporting on already-broken invariants; any witness will do
		for tenant, q := range queues {
			for elem := q.Front(); elem != nil; elem = elem.Next() {
				j, ok := elem.Value.(*job.Job)
				if !ok {
					return fmt.Errorf("tenant %d: queue holds a non-job entry", tenant)
				}
				if _, isRunning := m.running[j.ID]; isRunning {
					return fmt.Errorf("job %d is running and queued simultaneously", j.ID)
				}
			}
		}
	}
	return nil
}
