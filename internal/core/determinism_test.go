package core

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sim"
	"github.com/coda-repro/coda/internal/trace"
)

// TestPendingTenantsSorted pins the fix for the map-iteration bug: the
// candidate list handed to DRF must come back sorted by tenant ID and must
// exclude empty queues, no matter what order the map happens to iterate.
func TestPendingTenantsSorted(t *testing.T) {
	tenants := []job.TenantID{17, 3, 42, 8, 1, 99, 25, 4, 60, 12}
	queues := make(map[job.TenantID]*list.List)
	var want []job.TenantID
	for i, id := range tenants {
		q := list.New()
		if i%3 != 2 { // leave every third queue empty
			q.PushBack(&job.Job{ID: job.ID(i), Tenant: id})
			want = append(want, id)
		}
		queues[id] = q
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	var m MultiArray
	// Copy: pendingTenants returns a reused scratch slice.
	got := append([]job.TenantID(nil), m.pendingTenants(queues)...)
	if len(got) != len(want) {
		t.Fatalf("pendingTenants returned %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pendingTenants returned %v, want %v", got, want)
		}
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("pendingTenants not sorted: %v", got)
	}

	// Go randomizes map order per iteration, so an unsorted implementation
	// flakes across repeats; a sorted one never does.
	for rep := 0; rep < 50; rep++ {
		again := m.pendingTenants(queues)
		for i := range got {
			if again[i] != got[i] {
				t.Fatalf("rep %d: pendingTenants returned %v, previously %v", rep, again, got)
			}
		}
	}
}

// placementSequence flattens a run's observable placement order: every
// started job listed by (first start time, job ID).
func placementSequence(res *sim.Result) string {
	type start struct {
		id job.ID
		at time.Duration
	}
	var seq []start
	for id, js := range res.Jobs {
		if js.Started {
			seq = append(seq, start{id: id, at: js.FirstStart})
		}
	}
	sort.Slice(seq, func(i, j int) bool {
		if seq[i].at != seq[j].at {
			return seq[i].at < seq[j].at
		}
		return seq[i].id < seq[j].id
	})
	var b strings.Builder
	for _, s := range seq {
		js := res.Jobs[s.id]
		fmt.Fprintf(&b, "%d@%d cores=%d done=%d\n", s.id, s.at, js.FinalCores, js.CompletedAt)
	}
	return b.String()
}

// TestPlacementSequenceDeterministic runs the same trace through CODA twice
// and requires the placement sequences to be identical — the end-to-end
// guarantee the pendingTenants sort (and every //coda:ordered-ok site)
// exists to protect.
func TestPlacementSequenceDeterministic(t *testing.T) {
	gen := func() []*job.Job {
		cfg := trace.DefaultConfig()
		cfg.CPUJobs, cfg.GPUJobs = 120, 40
		cfg.Duration = 24 * time.Hour
		cfg.Seed = 42
		jobs, err := trace.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return jobs
	}
	resA, _ := runCoda(t, DefaultConfig(), testOptions(), gen())
	resB, _ := runCoda(t, DefaultConfig(), testOptions(), gen())
	seqA, seqB := placementSequence(resA), placementSequence(resB)
	if seqA != seqB {
		t.Errorf("same-seed runs placed jobs differently:\nrun A:\n%s\nrun B:\n%s", seqA, seqB)
	}
	if seqA == "" {
		t.Fatal("no jobs started; the trace is not exercising placement")
	}
}

// BenchmarkPendingTenants1kTenants measures the sort the determinism fix
// added, on a 1000-tenant queue map (far beyond the paper's cluster scale).
func BenchmarkPendingTenants1kTenants(b *testing.B) {
	queues := make(map[job.TenantID]*list.List, 1000)
	for i := 0; i < 1000; i++ {
		q := list.New()
		q.PushBack(&job.Job{ID: job.ID(i)})
		// Spread the IDs so insertion order and sorted order disagree.
		queues[job.TenantID(i*7919%100003)] = q
	}
	var m MultiArray
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := m.pendingTenants(queues); len(got) != 1000 {
			b.Fatalf("got %d tenants", len(got))
		}
	}
}
