package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/history"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/membw"
	"github.com/coda-repro/coda/internal/sched"
)

// scriptedEnv drives the allocator's state machine directly: GPUUtil
// returns a value from a caller-provided curve over the current core
// count, and resize calls can be made to fail.
type scriptedEnv struct {
	now       time.Duration
	cores     int
	utilCurve func(cores int) float64
	failAt    map[int]bool // resize targets that fail
	resizes   []int
}

var _ sched.Env = (*scriptedEnv)(nil)

func (e *scriptedEnv) Now() time.Duration                    { return e.now }
func (e *scriptedEnv) Cluster() *cluster.Cluster             { return nil }
func (e *scriptedEnv) Meter(int) (*membw.Meter, error)       { return membw.NewMeter(100, true) }
func (e *scriptedEnv) StartJob(job.ID, job.Allocation) error { return nil }
func (e *scriptedEnv) ResizeJob(job.ID, int) error           { return nil }
func (e *scriptedEnv) PreemptJob(job.ID) (*job.Job, error)   { return nil, fmt.Errorf("unsupported") }
func (e *scriptedEnv) ThrottleJob(job.ID, float64) error     { return nil }
func (e *scriptedEnv) UnthrottleJob(job.ID) error            { return nil }
func (e *scriptedEnv) GPUUtil(job.ID) (float64, error) {
	return e.utilCurve(e.cores), nil
}

// resize is the hook handed to the allocator.
func (e *scriptedEnv) resize(_ job.ID, cores int) error {
	if e.failAt[cores] {
		return fmt.Errorf("scripted: resize to %d refused", cores)
	}
	e.cores = cores
	e.resizes = append(e.resizes, cores)
	return nil
}

// peakCurve builds a utilization curve peaking at opt.
func peakCurve(opt int) func(int) float64 {
	return func(cores int) float64 {
		if cores <= opt {
			return 0.9 * float64(cores) / float64(opt)
		}
		return 0.9 - 0.025*float64(cores-opt)
	}
}

// newScripted builds an allocator wired to a scripted env with a job
// running at startCores.
func newScripted(t *testing.T, startCores int, curve func(int) float64) (*Allocator, *scriptedEnv, *job.Job) {
	t.Helper()
	env := &scriptedEnv{cores: startCores, utilCurve: curve, failAt: map[int]bool{}}
	a := NewAllocator(DefaultAllocatorConfig(), history.NewLog(), env.resize)
	a.Bind(env)
	j := &job.Job{
		ID: 1, Kind: job.KindGPUTraining, Tenant: 1,
		Category: job.CategoryCV, Model: "resnet50",
		Request: job.Request{CPUCores: 2, GPUs: 1, Nodes: 1},
		Work:    time.Hour,
	}
	a.OnStarted(j, startCores)
	return a, env, j
}

// step advances virtual time past one profiling step and ticks.
func step(a *Allocator, env *scriptedEnv) {
	env.now += DefaultAllocatorConfig().ProfileStep + time.Second
	a.Tick()
}

func TestAllocatorSearchConvergesDownhill(t *testing.T) {
	// Start above the optimum: the down-probe ladder must find it.
	a, env, _ := newScripted(t, 7, peakCurve(4))
	for i := 0; i < 10 && a.Tuning(1); i++ {
		step(a, env)
	}
	info, ok := a.Settled(1)
	if !ok {
		t.Fatal("search never settled")
	}
	if info.Cores < 3 || info.Cores > 5 {
		t.Errorf("settled at %d cores, want near the optimum 4", info.Cores)
	}
	if info.Steps > DefaultAllocatorConfig().MaxSteps {
		t.Errorf("used %d steps, cap is %d", info.Steps, DefaultAllocatorConfig().MaxSteps)
	}
}

func TestAllocatorSearchConvergesUphill(t *testing.T) {
	// Start below the optimum: the down probe fails to improve, the up
	// ladder climbs.
	a, env, _ := newScripted(t, 3, peakCurve(6))
	for i := 0; i < 10 && a.Tuning(1); i++ {
		step(a, env)
	}
	info, ok := a.Settled(1)
	if !ok {
		t.Fatal("search never settled")
	}
	if info.Cores < 4 {
		t.Errorf("settled at %d cores, want climbed toward 6", info.Cores)
	}
}

func TestAllocatorStepBudget(t *testing.T) {
	// A pathological monotone curve cannot out-run the step budget.
	a, env, _ := newScripted(t, 2, func(cores int) float64 {
		return 0.05 * float64(cores) // always improving upward
	})
	for i := 0; i < 20 && a.Tuning(1); i++ {
		step(a, env)
	}
	info, ok := a.Settled(1)
	if !ok {
		t.Fatal("search never settled")
	}
	if info.Steps > DefaultAllocatorConfig().MaxSteps {
		t.Errorf("steps = %d, cap %d", info.Steps, DefaultAllocatorConfig().MaxSteps)
	}
}

func TestAllocatorResizeFailureSettles(t *testing.T) {
	// The first down-probe target is refused (pool full): the allocator
	// probes upward instead, and a second refusal settles the search.
	a, env, _ := newScripted(t, 4, peakCurve(4))
	env.failAt[3] = true
	env.failAt[5] = true
	for i := 0; i < 10 && a.Tuning(1); i++ {
		step(a, env)
	}
	info, ok := a.Settled(1)
	if !ok {
		t.Fatal("search never settled")
	}
	if info.Cores != 4 {
		t.Errorf("settled at %d, want to stay at 4 when probes are refused", info.Cores)
	}
}

func TestAllocatorBaselineAtOneCore(t *testing.T) {
	// Starting at 1 core there is no downward probe; the search must go up.
	a, env, _ := newScripted(t, 1, peakCurve(3))
	for i := 0; i < 10 && a.Tuning(1); i++ {
		step(a, env)
	}
	info, ok := a.Settled(1)
	if !ok {
		t.Fatal("search never settled")
	}
	if info.Cores < 2 {
		t.Errorf("settled at %d, want climbed from 1", info.Cores)
	}
}

func TestAllocatorIgnoresCPUJobs(t *testing.T) {
	env := &scriptedEnv{cores: 2, utilCurve: peakCurve(3), failAt: map[int]bool{}}
	a := NewAllocator(DefaultAllocatorConfig(), history.NewLog(), env.resize)
	a.Bind(env)
	c := &job.Job{ID: 2, Kind: job.KindCPU, Tenant: 1, Request: job.Request{CPUCores: 2, Nodes: 1}, Work: time.Hour}
	a.OnStarted(c, 2)
	if a.Tuning(2) {
		t.Error("CPU jobs must not start tuning sessions")
	}
}

func TestAllocatorCompletionLogsHistory(t *testing.T) {
	a, env, j := newScripted(t, 4, peakCurve(4))
	for i := 0; i < 10 && a.Tuning(1); i++ {
		step(a, env)
	}
	a.OnCompleted(j, env.cores, time.Minute, time.Hour)
	cores, ok := a.log.LargestCores(j.Tenant, j.Category)
	if !ok || cores < 3 {
		t.Errorf("history cores = %d, %v", cores, ok)
	}
	if a.Tuning(1) {
		t.Error("tuning state leaked after completion")
	}
	if _, ok := a.settled[1]; ok {
		t.Error("settled state leaked after completion")
	}
	// Steps remain queryable for Table II.
	if _, ok := a.ProfileSteps(1); !ok {
		t.Error("ProfileSteps lost after completion")
	}
}

func TestAllocatorConfigDefaultsApplied(t *testing.T) {
	a := NewAllocator(AllocatorConfig{}, history.NewLog(), func(job.ID, int) error { return nil })
	def := DefaultAllocatorConfig()
	if a.cfg.ProfileStep != def.ProfileStep || a.cfg.MaxSteps != def.MaxSteps ||
		a.cfg.Epsilon != def.Epsilon || a.cfg.MaxCores != def.MaxCores {
		t.Errorf("zero config not defaulted: %+v", a.cfg)
	}
}
