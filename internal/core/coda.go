package core

import (
	"fmt"
	"slices"
	"time"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/history"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sched"
)

// Config assembles all CODA component settings.
type Config struct {
	// Allocator configures the adaptive CPU allocator (§V-B).
	Allocator AllocatorConfig
	// Eliminator configures the contention eliminator (§V-D); set
	// DisableEliminator for the §VI-E ablation.
	Eliminator        EliminatorConfig
	DisableEliminator bool
	// Array configures the multi-array split (§V-C).
	Array ArrayConfig
	// RebalanceEvery is how many completions between history-driven
	// resource-split rebalances (0 disables).
	RebalanceEvery int
	// DisableAdaptiveAllocation pins every training job at its owner's
	// requested cores (ablation: multi-array scheduling only).
	DisableAdaptiveAllocation bool
	// DisablePreemption stops GPU jobs from reclaiming borrowed reserve
	// cores (ablation: borrowing becomes a permanent grant).
	DisablePreemption bool
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		Allocator:      DefaultAllocatorConfig(),
		Eliminator:     DefaultEliminatorConfig(),
		Array:          DefaultArrayConfig(),
		RebalanceEvery: 200,
	}
}

// Scheduler is CODA assembled: adaptive CPU allocator + multi-array job
// scheduler + real-time contention eliminator, sharing one history log
// (Fig. 8).
type Scheduler struct {
	cfg     Config
	env     sched.Env
	log     *history.Log
	arrays  *MultiArray
	alloc   *Allocator
	elim    *Eliminator
	started map[job.ID]time.Duration // first-start times for history records
	arrived map[job.ID]time.Duration
	done    int
	gpus    int // gpus per node, for rebalance

	// Per-drain scratch reused across ticks.
	beforeDrain map[job.ID]bool
	newlyUp     []job.ID
}

var _ sched.Scheduler = (*Scheduler)(nil)

// New builds CODA for a homogeneous cluster of nodes × coresPerNode ×
// gpusPerNode.
func New(cfg Config, nodes, coresPerNode, gpusPerNode int) (*Scheduler, error) {
	return NewForCluster(cfg, cluster.Config{
		Nodes:        nodes,
		CoresPerNode: coresPerNode,
		GPUsPerNode:  gpusPerNode,
	})
}

// NewForCluster builds CODA for a possibly heterogeneous cluster with
// dedicated CPU-only nodes (§VI-G).
func NewForCluster(cfg Config, cc cluster.Config) (*Scheduler, error) {
	if cfg.Allocator.MaxCores <= 0 || cfg.Allocator.MaxCores > cc.CoresPerNode {
		cfg.Allocator.MaxCores = cc.CoresPerNode
	}
	arrays, err := NewMultiArrayForCluster(cfg.Array, cc)
	if err != nil {
		return nil, fmt.Errorf("coda: %w", err)
	}
	arrays.DisablePreemption = cfg.DisablePreemption
	log := history.NewLog()
	s := &Scheduler{
		cfg:     cfg,
		log:     log,
		arrays:  arrays,
		started: make(map[job.ID]time.Duration),
		arrived: make(map[job.ID]time.Duration),
		gpus:    cc.GPUsPerNode,
	}
	s.alloc = NewAllocator(cfg.Allocator, log, arrays.ResizeRunning)
	if !cfg.DisableEliminator {
		s.elim = NewEliminator(cfg.Eliminator, s.alloc, arrays)
	}
	return s, nil
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "coda" }

// Bind implements sched.Scheduler.
func (s *Scheduler) Bind(env sched.Env) {
	s.env = env
	s.arrays.Bind(env)
	s.alloc.Bind(env)
	if s.elim != nil {
		s.elim.Bind(env)
	}
}

// History exposes the job log (for tests and reports).
func (s *Scheduler) History() *history.Log { return s.log }

// SetHistory warm-starts the scheduler from a previously saved job log
// (§V-A: completed jobs are recorded "for future use" — a restarted CODA
// keeps its Nstart seeding and array statistics). Call before the first
// Submit.
func (s *Scheduler) SetHistory(log *history.Log) {
	if log == nil {
		return
	}
	s.log = log
	s.alloc.log = log
	s.arrays.Rebalance(log.Stats(), s.gpus)
}

// Arrays exposes the multi-array scheduler (for tests and reports).
func (s *Scheduler) Arrays() *MultiArray { return s.arrays }

// Allocator exposes the adaptive allocator (for tests and reports).
func (s *Scheduler) Allocator() *Allocator { return s.alloc }

// Submit implements sched.Scheduler (Fig. 8 steps 1-3): training jobs get
// an allocator-chosen core count and enter the GPU array; CPU jobs enter
// the CPU array. Preempted CPU jobs re-enter at the array head.
func (s *Scheduler) Submit(j *job.Job) {
	if _, seen := s.arrived[j.ID]; !seen {
		s.arrived[j.ID] = s.env.Now()
	} else if !j.IsGPU() {
		// A requeued preempted (or fault-killed) CPU job: back to the head
		// (§V-C).
		s.arrays.RequeueCPUFront(j)
		s.drain()
		return
	} else {
		// A fault-killed training job retrying: back to its array head with
		// a fresh allocator seed — the crash was not the job's fault, so it
		// does not queue behind later arrivals.
		cores := s.alloc.InitialCores(j)
		if s.cfg.DisableAdaptiveAllocation {
			cores = j.Request.CPUCores
		}
		s.arrays.RequeueGPUFront(j, cores)
		s.drain()
		return
	}
	if j.IsGPU() {
		cores := s.alloc.InitialCores(j)
		if s.cfg.DisableAdaptiveAllocation {
			cores = j.Request.CPUCores
		}
		s.arrays.EnqueueGPU(j, cores)
	} else {
		s.arrays.EnqueueCPU(j)
	}
	s.drain()
}

// OnJobCompleted implements sched.Scheduler (Fig. 8 step 5): resource
// usage and owner information are logged for future scheduling.
func (s *Scheduler) OnJobCompleted(j *job.Job) {
	finalCores := j.Request.CPUCores
	if alloc, ok := s.arrays.RunningAlloc(j.ID); ok {
		finalCores = alloc.CPUCores
	}
	s.arrays.OnCompleted(j)
	if s.elim != nil {
		s.elim.Forget(j.ID)
	}

	now := s.env.Now()
	queue := time.Duration(0)
	if start, ok := s.started[j.ID]; ok {
		if arr, okArr := s.arrived[j.ID]; okArr {
			queue = start - arr
		}
		delete(s.started, j.ID)
	}
	run := time.Duration(0)
	if start, ok := s.arrived[j.ID]; ok {
		run = now - start - queue
		delete(s.arrived, j.ID)
	}
	s.alloc.OnCompleted(j, finalCores, queue, run)

	s.done++
	if s.cfg.RebalanceEvery > 0 && s.done%s.cfg.RebalanceEvery == 0 {
		s.arrays.Rebalance(s.log.Stats(), s.gpus)
	}
	s.drain()
}

// OnJobKilled implements sched.Scheduler: a fault killed the job and the
// simulator already released its cluster resources. Every component drops
// its per-job state — array budgets and fair-share charges, eliminator
// interventions, allocator tuning sessions — but unlike a completion,
// nothing is written to the history log: an aborted attempt must not teach
// Nstart. Arrival and first-start times survive so a retried job keeps its
// original queueing record.
func (s *Scheduler) OnJobKilled(j *job.Job) {
	s.arrays.OnKilled(j)
	if s.elim != nil {
		s.elim.Forget(j.ID)
	}
	s.alloc.Forget(j.ID)
	s.drain()
}

// OnJobCancelled implements sched.Canceller: an explicit control-plane
// cancel removed a still-queued job. The queue entry, allocator seeds and
// arrival records all go; nothing is written to the history log — the job
// never ran, so there is nothing to teach Nstart.
func (s *Scheduler) OnJobCancelled(j *job.Job) {
	s.arrays.RemoveQueued(j)
	if s.elim != nil {
		s.elim.Forget(j.ID)
	}
	s.alloc.Forget(j.ID)
	delete(s.arrived, j.ID)
	delete(s.started, j.ID)
	s.drain()
}

// CheckInvariants validates the scheduler's internal bookkeeping: node
// budgets, fair-share accountants, and that no job is simultaneously
// running and queued. The simulator's invariant checker calls this after
// every event when enabled.
func (s *Scheduler) CheckInvariants() error {
	return s.arrays.CheckInvariants()
}

// Tick implements sched.Scheduler: profiling steps, contention checks and
// a scheduling pass.
func (s *Scheduler) Tick() {
	s.alloc.Tick()
	if s.elim != nil {
		s.elim.Tick()
	}
	s.drain()
}

// drain runs the arrays' scheduling pass and starts tuning sessions for
// training jobs that were just placed.
func (s *Scheduler) drain() {
	if s.beforeDrain == nil {
		s.beforeDrain = make(map[job.ID]bool, len(s.arrays.running))
	}
	before := s.beforeDrain
	clear(before)
	for id := range s.arrays.running {
		before[id] = true
	}
	s.arrays.Drain()
	// Tuning sessions start in job-ID order: OnStarted feeds the allocator's
	// per-job state machine, and a map-order walk here would thread Go's
	// iteration randomness into which session the next shared-noise reading
	// belongs to.
	started := s.newlyUp[:0]
	//coda:ordered-ok collected IDs are sorted before use
	for id := range s.arrays.running {
		if !before[id] {
			started = append(started, id)
		}
	}
	slices.Sort(started)
	s.newlyUp = started
	for _, id := range started {
		info := s.arrays.running[id]
		if _, ok := s.started[id]; !ok {
			s.started[id] = s.env.Now()
		}
		if info.j.IsGPU() && !s.cfg.DisableAdaptiveAllocation {
			s.alloc.OnStarted(info.j, info.alloc.CPUCores)
		}
	}
}
