package core

import (
	"bytes"
	"container/list"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"github.com/coda-repro/coda/internal/fair"
	"github.com/coda-repro/coda/internal/history"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sched"
)

// Checkpoint/restore for the full CODA scheduler: history log, multi-array
// ledgers and queues, per-node budget draws, allocator search state, and
// eliminator interventions. Construction parameters (Config, cluster shape)
// are not serialized — the caller rebuilds the scheduler with the same
// parameters and then restores. Restore deliberately does NOT call
// SetHistory: that path runs Rebalance, which would recompute reserves and
// sub-array splits, while the checkpoint carries them verbatim (the live run
// may have rebalanced mid-stream and a resumed run must continue
// bit-identically, not re-derive).

var _ sched.Checkpointer = (*Scheduler)(nil)

type drawState struct {
	Job         job.ID
	FromReserve int
	FromShared  int
}

type budgetState struct {
	Reserve  int
	GPUDraws []drawState
	CPUDraws []drawState
}

type tenantQueueState struct {
	Tenant job.TenantID
	Jobs   []job.Job
}

type desiredState struct {
	Job   job.ID
	Cores int
}

type runState struct {
	Job   job.Job
	Alloc job.Allocation
}

type multiArrayState struct {
	Budgets     []budgetState
	FourG       []int
	OneG        []int
	CPUAcc      fair.State
	GPUAcc      fair.State
	CPUQueues   []tenantQueueState
	GPUQueues   []tenantQueueState
	Desired     []desiredState
	Running     []runState
	Preemptions int
}

type tuneStateSer struct {
	Job       job.Job
	BestCores int
	BestUtil  float64
	CurCores  int
	Step      int
	Phase     int
	StepsUsed int
	NextCheck time.Duration
}

type settledState struct {
	Job  job.ID
	Info settleInfo
}

type stepsState struct {
	Job   job.ID
	Steps int
}

type allocatorState struct {
	Tuning  []tuneStateSer
	Settled []settledState
	Steps   []stepsState
}

type interventionState struct {
	Job        job.ID
	CapGBs     float64
	CoreHalved bool
	OrigCores  int
}

type eliminatorState struct {
	Throttled     []interventionState
	NextCheck     time.Duration
	Interventions int
	Degraded      int
}

type timeByJob struct {
	Job job.ID
	At  time.Duration
}

type schedulerState struct {
	History json.RawMessage
	Started []timeByJob
	Arrived []timeByJob
	Done    int
	Arrays  multiArrayState
	Alloc   allocatorState
	// Elim is nil when the eliminator is disabled; restore enforces that the
	// rebuilt scheduler's configuration matches.
	Elim *eliminatorState
}

func sortedDraws(m map[job.ID]draw) []drawState {
	out := make([]drawState, 0, len(m))
	//coda:ordered-ok entries are sorted below before serialization
	for id, d := range m {
		out = append(out, drawState{Job: id, FromReserve: d.fromReserve, FromShared: d.fromShared})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out
}

func sortedTimes(m map[job.ID]time.Duration) []timeByJob {
	out := make([]timeByJob, 0, len(m))
	//coda:ordered-ok entries are sorted below before serialization
	for id, at := range m {
		out = append(out, timeByJob{Job: id, At: at})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out
}

func sortedQueues(queues map[job.TenantID]*list.List) []tenantQueueState {
	out := make([]tenantQueueState, 0, len(queues))
	//coda:ordered-ok entries are sorted below before serialization
	for t, q := range queues {
		tq := tenantQueueState{Tenant: t, Jobs: make([]job.Job, 0, q.Len())}
		for elem := q.Front(); elem != nil; elem = elem.Next() {
			if j, ok := elem.Value.(*job.Job); ok {
				tq.Jobs = append(tq.Jobs, *j)
			}
		}
		out = append(out, tq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

func restoreQueues(dst map[job.TenantID]*list.List, src []tenantQueueState) error {
	for _, tq := range src {
		if _, dup := dst[tq.Tenant]; dup {
			return fmt.Errorf("core: duplicate tenant %d in checkpoint queues", tq.Tenant)
		}
		q := list.New()
		for i := range tq.Jobs {
			j := tq.Jobs[i]
			q.PushBack(&j)
		}
		dst[tq.Tenant] = q
	}
	return nil
}

// CheckpointState implements sched.Checkpointer.
func (s *Scheduler) CheckpointState() ([]byte, error) {
	var hist bytes.Buffer
	if err := s.log.Save(&hist); err != nil {
		return nil, fmt.Errorf("coda: checkpoint history: %w", err)
	}
	st := schedulerState{
		History: json.RawMessage(hist.Bytes()),
		Started: sortedTimes(s.started),
		Arrived: sortedTimes(s.arrived),
		Done:    s.done,
	}

	m := s.arrays
	st.Arrays = multiArrayState{
		Budgets:     make([]budgetState, len(m.budgets)),
		FourG:       append([]int(nil), m.fourG...),
		OneG:        append([]int(nil), m.oneG...),
		CPUAcc:      m.cpuAcc.CheckpointState(),
		GPUAcc:      m.gpuAcc.CheckpointState(),
		CPUQueues:   sortedQueues(m.cpuQueues),
		GPUQueues:   sortedQueues(m.gpuQueues),
		Preemptions: m.preemptions,
	}
	for i, b := range m.budgets {
		st.Arrays.Budgets[i] = budgetState{
			Reserve:  b.reserve,
			GPUDraws: sortedDraws(b.gpuDraws),
			CPUDraws: sortedDraws(b.cpuDraws),
		}
	}
	//coda:ordered-ok entries are sorted below before serialization
	for id, cores := range m.desired {
		st.Arrays.Desired = append(st.Arrays.Desired, desiredState{Job: id, Cores: cores})
	}
	sort.Slice(st.Arrays.Desired, func(i, j int) bool { return st.Arrays.Desired[i].Job < st.Arrays.Desired[j].Job })
	//coda:ordered-ok entries are sorted below before serialization
	for _, info := range m.running {
		st.Arrays.Running = append(st.Arrays.Running, runState{Job: *info.j, Alloc: info.alloc.Clone()})
	}
	sort.Slice(st.Arrays.Running, func(i, j int) bool { return st.Arrays.Running[i].Job.ID < st.Arrays.Running[j].Job.ID })

	a := s.alloc
	//coda:ordered-ok entries are sorted below before serialization
	for _, ts := range a.tuning {
		st.Alloc.Tuning = append(st.Alloc.Tuning, tuneStateSer{
			Job: *ts.j, BestCores: ts.bestCores, BestUtil: ts.bestUtil,
			CurCores: ts.curCores, Step: ts.step, Phase: int(ts.phase),
			StepsUsed: ts.stepsUsed, NextCheck: ts.nextCheck,
		})
	}
	sort.Slice(st.Alloc.Tuning, func(i, j int) bool { return st.Alloc.Tuning[i].Job.ID < st.Alloc.Tuning[j].Job.ID })
	//coda:ordered-ok entries are sorted below before serialization
	for id, info := range a.settled {
		st.Alloc.Settled = append(st.Alloc.Settled, settledState{Job: id, Info: info})
	}
	sort.Slice(st.Alloc.Settled, func(i, j int) bool { return st.Alloc.Settled[i].Job < st.Alloc.Settled[j].Job })
	//coda:ordered-ok entries are sorted below before serialization
	for id, n := range a.steps {
		st.Alloc.Steps = append(st.Alloc.Steps, stepsState{Job: id, Steps: n})
	}
	sort.Slice(st.Alloc.Steps, func(i, j int) bool { return st.Alloc.Steps[i].Job < st.Alloc.Steps[j].Job })

	if s.elim != nil {
		es := &eliminatorState{
			NextCheck:     s.elim.nextCheck,
			Interventions: s.elim.interventions,
			Degraded:      s.elim.degraded,
		}
		//coda:ordered-ok entries are sorted below before serialization
		for id, iv := range s.elim.throttled {
			es.Throttled = append(es.Throttled, interventionState{
				Job: id, CapGBs: iv.capGBs, CoreHalved: iv.coreHalved, OrigCores: iv.origCores,
			})
		}
		sort.Slice(es.Throttled, func(i, j int) bool { return es.Throttled[i].Job < es.Throttled[j].Job })
		st.Elim = es
	}
	return json.Marshal(st)
}

// RestoreCheckpoint implements sched.Checkpointer. The scheduler must be
// freshly built with the same Config and cluster shape as the checkpointed
// one, and not yet bound or submitted to.
func (s *Scheduler) RestoreCheckpoint(data []byte) error {
	var st schedulerState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("coda: restore: %w", err)
	}
	if s.done != 0 || len(s.started) != 0 || len(s.arrays.running) != 0 {
		return fmt.Errorf("coda: restore into a non-fresh scheduler")
	}
	if (s.elim == nil) != (st.Elim == nil) {
		return fmt.Errorf("coda: eliminator configuration mismatch (checkpoint has one: %v, scheduler has one: %v)",
			st.Elim != nil, s.elim != nil)
	}

	log, err := history.Load(bytes.NewReader(st.History))
	if err != nil {
		return fmt.Errorf("coda: restore history: %w", err)
	}
	// Direct assignment, not SetHistory: Rebalance must not run, the budget
	// reserves and sub-array splits are restored verbatim below.
	s.log = log
	s.alloc.log = log

	for _, e := range st.Started {
		s.started[e.Job] = e.At
	}
	for _, e := range st.Arrived {
		s.arrived[e.Job] = e.At
	}
	s.done = st.Done

	m := s.arrays
	if len(st.Arrays.Budgets) != len(m.budgets) {
		return fmt.Errorf("coda: checkpoint has %d node budgets, scheduler has %d", len(st.Arrays.Budgets), len(m.budgets))
	}
	for i, bs := range st.Arrays.Budgets {
		b := m.budgets[i]
		if bs.Reserve < 0 || bs.Reserve > b.cores {
			return fmt.Errorf("coda: node %d reserve %d out of [0,%d] in checkpoint", i, bs.Reserve, b.cores)
		}
		b.reserve = bs.Reserve
		for _, d := range bs.GPUDraws {
			if _, dup := b.gpuDraws[d.Job]; dup {
				return fmt.Errorf("coda: node %d duplicate gpu draw for job %d", i, d.Job)
			}
			b.gpuDraws[d.Job] = draw{fromReserve: d.FromReserve, fromShared: d.FromShared}
		}
		for _, d := range bs.CPUDraws {
			if _, dup := b.cpuDraws[d.Job]; dup {
				return fmt.Errorf("coda: node %d duplicate cpu draw for job %d", i, d.Job)
			}
			b.cpuDraws[d.Job] = draw{fromReserve: d.FromReserve, fromShared: d.FromShared}
		}
	}
	for _, nid := range append(append([]int(nil), st.Arrays.FourG...), st.Arrays.OneG...) {
		if nid < 0 || nid >= m.gpuNodes {
			return fmt.Errorf("coda: sub-array node %d out of range [0,%d)", nid, m.gpuNodes)
		}
	}
	m.fourG = append([]int(nil), st.Arrays.FourG...)
	m.oneG = append([]int(nil), st.Arrays.OneG...)
	if err := m.cpuAcc.RestoreCheckpointState(st.Arrays.CPUAcc); err != nil {
		return fmt.Errorf("coda: restore cpu accountant: %w", err)
	}
	if err := m.gpuAcc.RestoreCheckpointState(st.Arrays.GPUAcc); err != nil {
		return fmt.Errorf("coda: restore gpu accountant: %w", err)
	}
	if err := restoreQueues(m.cpuQueues, st.Arrays.CPUQueues); err != nil {
		return err
	}
	if err := restoreQueues(m.gpuQueues, st.Arrays.GPUQueues); err != nil {
		return err
	}
	for _, d := range st.Arrays.Desired {
		m.desired[d.Job] = d.Cores
	}
	for i := range st.Arrays.Running {
		rs := st.Arrays.Running[i]
		if _, dup := m.running[rs.Job.ID]; dup {
			return fmt.Errorf("coda: duplicate running job %d in checkpoint", rs.Job.ID)
		}
		j := rs.Job
		m.running[j.ID] = &runInfo{j: &j, alloc: rs.Alloc.Clone()}
	}
	m.preemptions = st.Arrays.Preemptions

	a := s.alloc
	for i := range st.Alloc.Tuning {
		ts := st.Alloc.Tuning[i]
		if ts.Phase < int(phaseBaseline) || ts.Phase > int(phaseDone) {
			return fmt.Errorf("coda: job %d has unknown tune phase %d", ts.Job.ID, ts.Phase)
		}
		j := ts.Job
		a.tuning[j.ID] = &tuneState{
			j: &j, bestCores: ts.BestCores, bestUtil: ts.BestUtil,
			curCores: ts.CurCores, step: ts.Step, phase: tunePhase(ts.Phase),
			stepsUsed: ts.StepsUsed, nextCheck: ts.NextCheck,
		}
	}
	for _, e := range st.Alloc.Settled {
		a.settled[e.Job] = e.Info
	}
	for _, e := range st.Alloc.Steps {
		a.steps[e.Job] = e.Steps
	}

	if st.Elim != nil {
		for _, iv := range st.Elim.Throttled {
			s.elim.throttled[iv.Job] = intervention{capGBs: iv.CapGBs, coreHalved: iv.CoreHalved, origCores: iv.OrigCores}
		}
		s.elim.nextCheck = st.Elim.NextCheck
		s.elim.interventions = st.Elim.Interventions
		s.elim.degraded = st.Elim.Degraded
	}

	if err := s.CheckInvariants(); err != nil {
		return fmt.Errorf("coda: restored state fails invariants: %w", err)
	}
	return nil
}
