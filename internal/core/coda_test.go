package core

import (
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/history"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/perfmodel"
	"github.com/coda-repro/coda/internal/sim"
	"github.com/coda-repro/coda/internal/trace"
)

func testOptions() sim.Options {
	opts := sim.DefaultOptions()
	opts.Cluster = cluster.Config{
		Nodes: 4, CoresPerNode: 28, GPUsPerNode: 5,
		BandwidthGBs: 120, PCIeGBs: 16,
	}
	opts.SampleInterval = time.Minute
	// Run every core test under the simulator's per-event invariant checker,
	// which also folds in the CODA scheduler's own CheckInvariants.
	opts.Invariants = true
	return opts
}

func newCoda(t *testing.T, cfg Config, opts sim.Options) *Scheduler {
	t.Helper()
	s, err := New(cfg, opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func gpuJob(id job.ID, arrival time.Duration, model string, reqCores, gpus, nodes int, work time.Duration) *job.Job {
	m, err := perfmodel.Lookup(model)
	if err != nil {
		panic(err)
	}
	return &job.Job{
		ID: id, Kind: job.KindGPUTraining, Tenant: 1, Category: m.Category,
		Model: model, Request: job.Request{CPUCores: reqCores, GPUs: gpus, Nodes: nodes},
		Arrival: arrival, Work: work,
	}
}

func cpuJob(id job.ID, arrival time.Duration, tenant job.TenantID, cores int, work time.Duration) *job.Job {
	return &job.Job{
		ID: id, Kind: job.KindCPU, Tenant: tenant,
		Request: job.Request{CPUCores: cores, Nodes: 1},
		Arrival: arrival, Work: work, Bandwidth: 0.3 * float64(cores),
	}
}

func hogJob(id job.ID, arrival time.Duration, cores int, bw float64, work time.Duration) *job.Job {
	return &job.Job{
		ID: id, Kind: job.KindBandwidthHog, Tenant: 3,
		Request: job.Request{CPUCores: cores, Nodes: 1},
		Arrival: arrival, Work: work, Bandwidth: bw,
	}
}

func runCoda(t *testing.T, cfg Config, opts sim.Options, jobs []*job.Job) (*sim.Result, *Scheduler) {
	t.Helper()
	s := newCoda(t, cfg, opts)
	simulator, err := sim.New(opts, s, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Arrays().CheckInvariants(); err != nil {
		t.Fatalf("multi-array invariants: %v", err)
	}
	return res, s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(), 0, 28, 5); err == nil {
		t.Error("zero nodes should fail")
	}
	cfg := DefaultConfig()
	cfg.Array.ReserveCores = 99
	if _, err := New(cfg, 4, 28, 5); err != nil {
		// MaxCores is clamped but the reserve is validated per node count.
		t.Logf("reserve validation: %v (expected)", err)
	} else {
		t.Error("oversized reserve should fail")
	}
}

func TestName(t *testing.T) {
	s := newCoda(t, DefaultConfig(), testOptions())
	if s.Name() != "coda" {
		t.Errorf("Name = %q", s.Name())
	}
}

// TestAllocatorConvergesNearOptimal runs every Table I model alone under
// CODA and checks the tuned core count lands within one core of the
// perfmodel optimum in at most MaxSteps profiling steps (§VI-F, Tbl. II).
func TestAllocatorConvergesNearOptimal(t *testing.T) {
	for _, name := range perfmodel.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			model, err := perfmodel.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			wantOpt, err := model.OptimalCores(perfmodel.Config{Nodes: 1, GPUs: 1}, 0)
			if err != nil {
				t.Fatal(err)
			}
			// The owner requested 2 cores (the common under-request).
			j := gpuJob(1, 0, name, 2, 1, 1, 2*time.Hour)
			res, s := runCoda(t, DefaultConfig(), testOptions(), []*job.Job{j})
			if !res.Jobs[1].Completed {
				t.Fatal("job did not complete")
			}
			final := res.Jobs[1].FinalCores
			if final < wantOpt-1 || final > wantOpt+1 {
				t.Errorf("tuned cores = %d, optimal %d", final, wantOpt)
			}
			// The tuned point is logged for Nstart seeding.
			if cores, ok := s.History().LargestCores(1, j.Category); !ok || cores != final {
				t.Errorf("history cores = %d, %v; want %d", cores, ok, final)
			}
		})
	}
}

// TestTuningOverheadWithinFourSteps replays Table II: every model settles
// within the configured profiling-step budget.
func TestTuningOverheadWithinFourSteps(t *testing.T) {
	for _, name := range perfmodel.Names() {
		j := gpuJob(1, 0, name, 2, 1, 1, 2*time.Hour)
		s := newCoda(t, DefaultConfig(), testOptions())
		simulator, err := sim.New(testOptions(), s, []*job.Job{j})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := simulator.Run(); err != nil {
			t.Fatal(err)
		}
		// The settled record is cleared at completion; recover from history.
		stats := s.History().Stats()
		if stats.GPUJobs != 1 {
			t.Fatalf("%s: job not logged", name)
		}
	}
}

// TestSlimmingOverRequestedJob checks the headline behaviour: a job
// requesting far too many cores is slimmed toward the optimum, freeing
// cores for others (Fig. 14's "33.6%% of jobs get 1-20 fewer cores").
func TestSlimmingOverRequestedJob(t *testing.T) {
	j := gpuJob(1, 0, "resnet50", 20, 1, 1, 2*time.Hour)
	res, _ := runCoda(t, DefaultConfig(), testOptions(), []*job.Job{j})
	if !res.Jobs[1].Completed {
		t.Fatal("job did not complete")
	}
	if res.Jobs[1].FinalCores >= 20 {
		t.Errorf("FinalCores = %d, want slimmed below the 20 requested", res.Jobs[1].FinalCores)
	}
	if res.Jobs[1].FinalCores > 6 {
		t.Errorf("FinalCores = %d, want near resnet50's optimum of 3", res.Jobs[1].FinalCores)
	}
}

func TestInitialCoresSeeding(t *testing.T) {
	log := history.NewLog()
	a := NewAllocator(DefaultAllocatorConfig(), log, func(job.ID, int) error { return nil })

	cvJob := gpuJob(1, 0, "resnet50", 2, 1, 1, time.Hour)
	if got := a.InitialCores(cvJob); got != 3 {
		t.Errorf("CV first-timer Nstart = %d, want 3", got)
	}
	nlpJob := gpuJob(2, 0, "bat", 2, 1, 1, time.Hour)
	if got := a.InitialCores(nlpJob); got != 5 {
		t.Errorf("NLP first-timer Nstart = %d, want 5", got)
	}
	speech := gpuJob(3, 0, "wavenet", 2, 1, 1, time.Hour)
	if got := a.InitialCores(speech); got != 5 {
		t.Errorf("Speech first-timer Nstart = %d, want 5", got)
	}

	// Multi-GPU first-timers scale by the GPU count.
	multi := gpuJob(4, 0, "resnet50", 2, 4, 1, time.Hour)
	if got := a.InitialCores(multi); got != 12 {
		t.Errorf("1N4G CV Nstart = %d, want 12", got)
	}

	// Multi-node jobs are pinned to 2 cores (§IV-B2).
	twoNode := gpuJob(5, 0, "resnet50", 2, 8, 2, time.Hour)
	if got := a.InitialCores(twoNode); got != 2 {
		t.Errorf("2N8G Nstart = %d, want 2", got)
	}

	// History overrides the default.
	if err := log.Add(history.Record{
		JobID: 10, Tenant: 1, Kind: job.KindGPUTraining,
		Category: job.CategoryCV, Model: "resnet50", CPUCores: 7, GPUs: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if got := a.InitialCores(cvJob); got != 7 {
		t.Errorf("history-seeded Nstart = %d, want 7", got)
	}

	// No category: fall back to the owner's whole history.
	anon := gpuJob(6, 0, "resnet50", 2, 1, 1, time.Hour)
	anon.Category = job.CategoryNone
	if got := a.InitialCores(anon); got != 7 {
		t.Errorf("anonymous Nstart = %d, want 7 (owner history)", got)
	}

	// Hints adjust the seed (§V-B1).
	hinted := gpuJob(7, 0, "resnet50", 2, 1, 1, time.Hour)
	hinted.Hints = job.Hints{HasPipeline: true, LargeWeights: true, ComplexPreprocess: true}
	if got := a.InitialCores(hinted); got != 6 {
		t.Errorf("hinted Nstart = %d, want 7-1-1+1=6", got)
	}

	// CPU jobs pass through untouched.
	c := cpuJob(8, 0, 2, 3, time.Hour)
	if got := a.InitialCores(c); got != 3 {
		t.Errorf("CPU job InitialCores = %d, want 3", got)
	}
}

func TestInitialCoresAnonymousFirstTimer(t *testing.T) {
	a := NewAllocator(DefaultAllocatorConfig(), history.NewLog(), func(job.ID, int) error { return nil })
	anon := gpuJob(1, 0, "resnet50", 2, 1, 1, time.Hour)
	anon.Category = job.CategoryNone
	if got := a.InitialCores(anon); got != 4 {
		t.Errorf("anonymous first-timer Nstart = %d, want 4", got)
	}
}

// TestCrossArrayPreemption: CPU jobs borrow the GPU array's reserve while
// it is idle; an arriving GPU job reclaims the cores by preempting them
// (§V-C).
func TestCrossArrayPreemption(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 1
	opts.Cluster.CoresPerNode = 12
	opts.Cluster.GPUsPerNode = 2
	cfg := DefaultConfig()
	cfg.Array.ReserveCores = 8 // 4 shared cores
	cfg.RebalanceEvery = 0     // keep the split fixed for the test

	jobs := []*job.Job{
		// Three CPU jobs: 12 cores total, must borrow 8 from the reserve.
		cpuJob(1, 0, 2, 4, 4*time.Hour),
		cpuJob(2, 0, 2, 4, 4*time.Hour),
		cpuJob(3, 0, 2, 4, 4*time.Hour),
		// A training job arrives needing reserve cores.
		gpuJob(4, 30*time.Minute, "resnet50", 3, 1, 1, time.Hour),
	}
	res, s := runCoda(t, cfg, opts, jobs)
	if res.Preemptions == 0 {
		t.Error("expected cross-array preemption")
	}
	if s.Arrays().Preemptions() == 0 {
		t.Error("multi-array did not count preemptions")
	}
	for id := job.ID(1); id <= 4; id++ {
		if !res.Jobs[id].Completed {
			t.Errorf("job %d did not complete", id)
		}
	}
	// The training job must not have waited long: preemption is immediate.
	if q := res.Jobs[4].QueueTime(); q > 5*time.Minute {
		t.Errorf("GPU job queued %v despite preemption", q)
	}
}

// TestBorrowingWhileGPUJobsPend: a CPU job may borrow idle reserve cores
// even while a GPU job waits for a GPU (the reserve is reclaimed by
// preemption only when a GPU job actually needs the cores, §V-C).
func TestBorrowingWhileGPUJobsPend(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 1
	opts.Cluster.CoresPerNode = 12
	opts.Cluster.GPUsPerNode = 1
	cfg := DefaultConfig()
	cfg.Array.ReserveCores = 8
	cfg.RebalanceEvery = 0

	jobs := []*job.Job{
		// GPU job holds the only GPU for 2h; a second GPU job waits on it.
		gpuJob(1, 0, "transformer", 2, 1, 1, 2*time.Hour),
		gpuJob(2, time.Minute, "transformer", 2, 1, 1, time.Hour),
		// CPU job needing 6 cores: shared pool only has 4, so it borrows 2.
		cpuJob(3, 2*time.Minute, 2, 6, 30*time.Minute),
	}
	res, _ := runCoda(t, cfg, opts, jobs)
	if q := res.Jobs[3].QueueTime(); q > 5*time.Minute {
		t.Errorf("CPU job queued %v; borrowing should be immediate", q)
	}
	for id := job.ID(1); id <= 3; id++ {
		if !res.Jobs[id].Completed {
			t.Errorf("job %d did not complete", id)
		}
	}
}

// TestEliminatorProtectsTrainingJob: with the eliminator on, a
// bandwidth-sensitive training job co-located with a HEAT-style hog
// finishes sooner than with the eliminator disabled (§VI-E).
func TestEliminatorProtectsTrainingJob(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 1
	jobs := func() []*job.Job {
		return []*job.Job{
			gpuJob(1, 0, "bat", 5, 1, 1, 2*time.Hour),
			hogJob(2, 10*time.Minute, 16, 120, 3*time.Hour),
		}
	}
	on, _ := runCoda(t, DefaultConfig(), opts, jobs())
	offCfg := DefaultConfig()
	offCfg.DisableEliminator = true
	off, _ := runCoda(t, offCfg, opts, jobs())

	if on.Throttles == 0 {
		t.Error("eliminator never throttled the hog")
	}
	if off.Throttles != 0 {
		t.Error("disabled eliminator still throttled")
	}
	if on.Jobs[1].EndToEnd() >= off.Jobs[1].EndToEnd() {
		t.Errorf("eliminator did not help: on=%v off=%v",
			on.Jobs[1].EndToEnd(), off.Jobs[1].EndToEnd())
	}
}

// TestEliminatorCoreHalvingFallback: without MBA the eliminator halves the
// hog's cores instead (§V-D).
func TestEliminatorCoreHalvingFallback(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 1
	opts.MBASupported = false
	jobs := []*job.Job{
		gpuJob(1, 0, "bat", 5, 1, 1, time.Hour),
		hogJob(2, 10*time.Minute, 16, 120, 2*time.Hour),
	}
	res, s := runCoda(t, DefaultConfig(), opts, jobs)
	if res.Throttles != 0 {
		t.Error("MBA throttling should be unavailable")
	}
	if s.elim.Interventions() == 0 {
		t.Error("eliminator never intervened via core halving")
	}
	// The hog was resized at least once.
	if res.Jobs[2].Resizes == 0 {
		t.Error("hog cores never halved")
	}
}

// TestFullTraceCODA runs a mixed mini-trace end to end.
func TestFullTraceCODA(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.CPUJobs, cfg.GPUJobs = 400, 120
	cfg.Duration = 48 * time.Hour
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Cluster.Nodes = 8
	res, s := runCoda(t, DefaultConfig(), opts, jobs)
	incomplete := 0
	for _, js := range res.Jobs {
		if !js.Completed {
			incomplete++
		}
	}
	if incomplete > 0 {
		t.Errorf("%d jobs incomplete", incomplete)
	}
	stats := s.History().Stats()
	if stats.GPUJobs == 0 || stats.CPUJobs == 0 {
		t.Errorf("history empty: %+v", stats)
	}
	sum := res.Summarize()
	if sum.GPUUtil <= 0 || sum.GPUActiveRate <= 0 {
		t.Errorf("summary = %+v", sum)
	}
}

// TestDisableAdaptiveAllocationAblation pins requested cores.
func TestDisableAdaptiveAllocationAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableAdaptiveAllocation = true
	j := gpuJob(1, 0, "resnet50", 2, 1, 1, time.Hour)
	res, _ := runCoda(t, cfg, testOptions(), []*job.Job{j})
	if got := res.Jobs[1].FinalCores; got != 2 {
		t.Errorf("FinalCores = %d, want the pinned 2", got)
	}
	// A starved 2-core resnet50 run takes notably longer than 1h.
	if res.Jobs[1].EndToEnd() < 75*time.Minute {
		t.Errorf("EndToEnd = %v, want a starved slow run", res.Jobs[1].EndToEnd())
	}
}

// TestRebalanceAdaptsReserve: after enough completions the reserve tracks
// the mean tuned demand.
func TestRebalanceAdaptsReserve(t *testing.T) {
	m, err := NewMultiArray(DefaultArrayConfig(), 2, 28, 5)
	if err != nil {
		t.Fatal(err)
	}
	log := history.NewLog()
	for i := 1; i <= 10; i++ {
		if err := log.Add(history.Record{
			JobID: job.ID(i), Tenant: 1, Kind: job.KindGPUTraining,
			Category: job.CategoryCV, Model: "resnet50", CPUCores: 3, GPUs: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	m.Rebalance(log.Stats(), 5)
	// 3 cores per GPU x 5 GPUs + 1 spare = 16 reserve.
	for nid, b := range m.budgets {
		if b.reserve != 16 {
			t.Errorf("node %d reserve = %d, want 16", nid, b.reserve)
		}
	}
	// Empty history leaves the split untouched.
	m2, _ := NewMultiArray(DefaultArrayConfig(), 1, 28, 5)
	m2.Rebalance(history.NewLog().Stats(), 5)
	if m2.budgets[0].reserve != DefaultArrayConfig().ReserveCores {
		t.Error("empty-history rebalance changed the reserve")
	}
}

// TestMultiNodePlacement: a 2N8G job lands on two nodes.
func TestMultiNodePlacement(t *testing.T) {
	j := gpuJob(1, 0, "transformer", 2, 8, 2, time.Hour)
	res, _ := runCoda(t, DefaultConfig(), testOptions(), []*job.Job{j})
	if !res.Jobs[1].Completed {
		t.Fatal("multi-node job did not complete")
	}
	// Multi-node runs at ~72.5% speed: EndToEnd ≈ work/0.725.
	hour := time.Hour
	want := time.Duration(float64(hour) / 0.725)
	got := res.Jobs[1].EndToEnd()
	if got < want-5*time.Minute || got > want+10*time.Minute {
		t.Errorf("EndToEnd = %v, want ~%v", got, want)
	}
}

// TestLargeJobPrefersFourGNodes: a 4-GPU job goes to the 4-GPU sub-array.
func TestLargeJobPrefersFourGNodes(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 4 // nodes 0 = 4G sub-array (fraction 0.3 -> 1 node)
	s := newCoda(t, DefaultConfig(), opts)
	jobs := []*job.Job{gpuJob(1, 0, "transformer", 2, 4, 1, time.Hour)}
	simulator, err := sim.New(opts, s, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Arrays().fourG) != 1 || s.Arrays().fourG[0] != 0 {
		t.Fatalf("fourG nodes = %v, want [0]", s.Arrays().fourG)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Jobs[1].Completed {
		t.Fatal("job did not complete")
	}
}
