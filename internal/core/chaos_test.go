package core

import (
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/job"
)

// TestEliminatorDegradesGracefullyWhenTelemetryDark: the contention
// eliminator's workload is the one TestEliminatorProtectsTrainingJob shows
// throttling — but with the node's bandwidth telemetry dark the eliminator
// must hold its last decision (here: never throttle), count the degraded
// intervals and let the run finish.
func TestEliminatorDegradesGracefullyWhenTelemetryDark(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 1
	jobs := func() []*job.Job {
		return []*job.Job{
			gpuJob(1, 0, "bat", 5, 1, 1, 2*time.Hour),
			hogJob(2, 10*time.Minute, 16, 120, 3*time.Hour),
		}
	}

	// Baseline: telemetry up, the hog gets throttled.
	lit, _ := runCoda(t, DefaultConfig(), opts, jobs())
	if lit.Throttles == 0 {
		t.Fatal("baseline never throttled; the workload no longer exercises the eliminator")
	}

	// Dark from t=0 with no restore: every meter read fails.
	opts.Faults = chaos.Plan{Faults: []chaos.Fault{
		{At: 0, Kind: chaos.KindMembwDark, Node: 0},
	}}
	dark, s := runCoda(t, DefaultConfig(), opts, jobs())

	if dark.Throttles != 0 {
		t.Errorf("throttles = %d during a run-long dropout, want 0 (hold last decision)", dark.Throttles)
	}
	if s.elim.Degraded() == 0 {
		t.Error("eliminator recorded no degraded checks while telemetry was dark")
	}
	if dark.Faults.DegradedSamples == 0 {
		t.Error("run recorded no degraded samples")
	}
	if dark.Faults.MembwDropouts != 1 {
		t.Errorf("dropouts = %d, want 1", dark.Faults.MembwDropouts)
	}
	for id := job.ID(1); id <= 2; id++ {
		if !dark.Jobs[id].Completed {
			t.Errorf("job %d did not complete; degraded mode must not wedge the run", id)
		}
	}
}
