package core

import (
	"slices"
	"time"

	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/membw"
	"github.com/coda-repro/coda/internal/sched"
)

// EliminatorConfig parameterizes the real-time contention eliminator
// (§V-D).
type EliminatorConfig struct {
	// Threshold is the node memory-bandwidth utilization that arms the
	// eliminator ("75% by default according to the analysis in Section
	// IV-C").
	Threshold float64
	// Release is the hysteresis level below which throttles are lifted.
	Release float64
	// UtilDropTolerance is the relative GPU-utilization drop (vs. the
	// allocator's settled measurement) that confirms contention.
	UtilDropTolerance float64
	// CheckInterval is the monitoring cadence.
	CheckInterval time.Duration
}

// DefaultEliminatorConfig matches the paper's settings.
func DefaultEliminatorConfig() EliminatorConfig {
	return EliminatorConfig{
		Threshold:         0.75,
		Release:           0.60,
		UtilDropTolerance: 0.03,
		CheckInterval:     30 * time.Second,
	}
}

// Eliminator watches per-node memory bandwidth and throttles
// bandwidth-hungry CPU jobs when they degrade co-located DNN training jobs
// (§V-D). On nodes with MBA it caps the job's bandwidth; elsewhere it
// halves the job's cores. Training jobs are never touched (§V-A).
type Eliminator struct {
	cfg   EliminatorConfig
	env   sched.Env
	alloc *Allocator
	array *MultiArray
	// throttled tracks active interventions per job: the cap applied, or
	// coreHalved for the MBA-less fallback.
	throttled map[job.ID]intervention
	nextCheck time.Duration
	// interventions counts total throttle/halve actions (§VI-E reporting).
	interventions int
	// degraded counts node checks skipped because bandwidth telemetry was
	// dark (chaos dropouts): the eliminator held its last decision.
	degraded int
	// Per-pass scratch reused across node checks.
	jobIDs []job.ID
	usages []membw.JobUsage
}

// intervention records how a CPU job was restrained.
type intervention struct {
	capGBs     float64
	coreHalved bool
	origCores  int
}

// NewEliminator builds the eliminator. It reads the allocator's settled
// utilization records to detect drops and uses the multi-array scheduler's
// resize hook for the core-halving fallback.
func NewEliminator(cfg EliminatorConfig, alloc *Allocator, array *MultiArray) *Eliminator {
	def := DefaultEliminatorConfig()
	if cfg.Threshold <= 0 || cfg.Threshold > 1 {
		cfg.Threshold = def.Threshold
	}
	if cfg.Release <= 0 || cfg.Release >= cfg.Threshold {
		cfg.Release = def.Release
	}
	if cfg.UtilDropTolerance <= 0 {
		cfg.UtilDropTolerance = def.UtilDropTolerance
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = def.CheckInterval
	}
	return &Eliminator{
		cfg:       cfg,
		alloc:     alloc,
		array:     array,
		throttled: make(map[job.ID]intervention),
	}
}

// Bind attaches the environment.
func (e *Eliminator) Bind(env sched.Env) { e.env = env }

// Interventions returns the total action count.
func (e *Eliminator) Interventions() int { return e.interventions }

// Degraded returns how many node checks ran blind because bandwidth
// telemetry was unavailable.
func (e *Eliminator) Degraded() int { return e.degraded }

// Forget drops intervention state for a completed job.
func (e *Eliminator) Forget(id job.ID) { delete(e.throttled, id) }

// Tick runs one monitoring pass when the check interval elapsed.
func (e *Eliminator) Tick() {
	now := e.env.Now()
	if now < e.nextCheck {
		return
	}
	e.nextCheck = now + e.cfg.CheckInterval

	for nid := 0; nid < e.env.Cluster().Size(); nid++ {
		e.checkNode(nid)
	}
}

// trainingJobDegraded reports whether some settled training job on the
// node shows a utilization drop beyond tolerance — the paper's second
// trigger condition ("and the GPU utilization of the DNN training jobs on
// the node drops", §V-D).
func (e *Eliminator) trainingJobDegraded(nid int) bool {
	n, err := e.env.Cluster().Node(nid)
	if err != nil {
		return false
	}
	e.jobIDs = n.AppendJobs(e.jobIDs[:0])
	slices.Sort(e.jobIDs)
	for _, id := range e.jobIDs {
		info, ok := e.alloc.Settled(id)
		if !ok || info.Util <= 0 {
			continue
		}
		util, err := e.env.GPUUtil(id)
		if err != nil {
			continue
		}
		if util < info.Util*(1-e.cfg.UtilDropTolerance) {
			return true
		}
	}
	return false
}

// checkNode arms or releases interventions on one node. When the node's
// bandwidth telemetry is unavailable (a fault-injected dropout), the
// eliminator degrades gracefully: it holds every standing throttle decision
// — acting on a stale or absent reading could hurt either side — and counts
// the blind check so runs report their degraded-mode exposure.
func (e *Eliminator) checkNode(nid int) {
	meter, err := e.env.Meter(nid)
	if err != nil {
		e.degraded++
		return
	}
	util := meter.Utilization()

	switch {
	case util >= e.cfg.Threshold && e.trainingJobDegraded(nid):
		e.restrain(nid)
	case util < e.cfg.Release:
		e.relax(nid)
	}
}

// restrain throttles the hungriest CPU job on the node: MBA cap sized to
// bring the node back to the threshold, or core-halving without MBA.
func (e *Eliminator) restrain(nid int) {
	meter, err := e.env.Meter(nid)
	if err != nil {
		return
	}
	excess := meter.Total() - e.cfg.Threshold*meter.Capacity()
	if excess <= 0 {
		return
	}
	e.usages = meter.AppendJobs(e.usages[:0])
	for _, u := range e.usages {
		if !u.CPUJob || u.EffectiveGBs <= 0 {
			continue
		}
		if _, done := e.throttled[u.ID]; done {
			continue
		}
		if meter.MBASupported() {
			capGBs := u.EffectiveGBs - excess
			if capGBs < 1 {
				capGBs = 1
			}
			if err := e.env.ThrottleJob(u.ID, capGBs); err != nil {
				continue
			}
			e.throttled[u.ID] = intervention{capGBs: capGBs}
			e.interventions++
			return
		}
		// Fallback: halve the CPU job's cores, which roughly halves its
		// bandwidth (§V-D).
		alloc, ok := e.array.RunningAlloc(u.ID)
		if !ok || alloc.CPUCores < 2 {
			continue
		}
		half := alloc.CPUCores / 2
		if err := e.array.ResizeRunning(u.ID, half); err != nil {
			continue
		}
		e.throttled[u.ID] = intervention{coreHalved: true, origCores: alloc.CPUCores}
		e.interventions++
		return
	}
}

// relax lifts interventions on a node whose bandwidth dropped below the
// release level, restoring throttled jobs one per pass.
func (e *Eliminator) relax(nid int) {
	meter, err := e.env.Meter(nid)
	if err != nil {
		return
	}
	e.usages = meter.AppendJobs(e.usages[:0])
	for _, u := range e.usages {
		iv, ok := e.throttled[u.ID]
		if !ok {
			continue
		}
		if iv.coreHalved {
			if err := e.array.ResizeRunning(u.ID, iv.origCores); err != nil {
				continue
			}
		} else {
			if err := e.env.UnthrottleJob(u.ID); err != nil {
				continue
			}
		}
		delete(e.throttled, u.ID)
		return
	}
}
