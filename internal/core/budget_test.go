package core

import (
	"testing"
	"testing/quick"

	"github.com/coda-repro/coda/internal/job"
)

func mustBudget(t *testing.T, cores, reserve int) *nodeBudget {
	t.Helper()
	b, err := newNodeBudget(cores, reserve)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewNodeBudgetValidation(t *testing.T) {
	if _, err := newNodeBudget(0, 0); err == nil {
		t.Error("zero cores should fail")
	}
	if _, err := newNodeBudget(8, 9); err == nil {
		t.Error("reserve > cores should fail")
	}
	if _, err := newNodeBudget(8, -1); err == nil {
		t.Error("negative reserve should fail")
	}
}

func TestChargeGPUPrefersReserve(t *testing.T) {
	b := mustBudget(t, 10, 6)
	if !b.chargeGPU(1, 4) {
		t.Fatal("chargeGPU failed")
	}
	if got := b.reserveUsed(); got != 4 {
		t.Errorf("reserveUsed = %d, want 4", got)
	}
	if got := b.sharedUsed(); got != 0 {
		t.Errorf("sharedUsed = %d, want 0", got)
	}
	// Next GPU job spills into the shared pool (reserve has 2 left).
	if !b.chargeGPU(2, 5) {
		t.Fatal("second chargeGPU failed")
	}
	if got := b.reserveUsed(); got != 6 {
		t.Errorf("reserveUsed = %d, want 6", got)
	}
	if got := b.sharedUsed(); got != 3 {
		t.Errorf("sharedUsed = %d, want 3", got)
	}
	// Pools exhausted beyond capacity.
	if b.chargeGPU(3, 2) {
		t.Error("chargeGPU should fail: only 1 shared core left")
	}
	if err := b.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestChargeGPUDuplicate(t *testing.T) {
	b := mustBudget(t, 10, 5)
	if !b.chargeGPU(1, 2) {
		t.Fatal("chargeGPU failed")
	}
	if b.chargeGPU(1, 2) {
		t.Error("duplicate chargeGPU should fail")
	}
}

func TestChargeCPUBorrowing(t *testing.T) {
	b := mustBudget(t, 10, 6) // 4 shared
	if !b.chargeCPU(1, 3, false) {
		t.Fatal("chargeCPU failed")
	}
	// 1 shared core left; 5 more requires borrowing.
	if b.chargeCPU(2, 5, false) {
		t.Error("chargeCPU without borrow should fail")
	}
	if !b.chargeCPU(2, 5, true) {
		t.Fatal("chargeCPU with borrow failed")
	}
	if got := b.borrowedCores(); got != 4 {
		t.Errorf("borrowedCores = %d, want 4", got)
	}
	borrowers := b.borrowers()
	if len(borrowers) != 1 || borrowers[0] != 2 {
		t.Errorf("borrowers = %v, want [2]", borrowers)
	}
	if err := b.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestBorrowersOrdering(t *testing.T) {
	b := mustBudget(t, 20, 15) // 5 shared
	// Job 1 borrows 2, job 2 borrows 4 (both spill past shared).
	if !b.chargeCPU(1, 5, true) { // 5 shared used... wait shared=5: all shared
		t.Fatal("charge 1")
	}
	if !b.chargeCPU(2, 4, true) { // all borrowed
		t.Fatal("charge 2")
	}
	if !b.chargeCPU(3, 2, true) {
		t.Fatal("charge 3")
	}
	order := b.borrowers()
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Errorf("borrowers = %v, want [2 3] (largest borrow first)", order)
	}
}

func TestRelease(t *testing.T) {
	b := mustBudget(t, 10, 5)
	if !b.chargeGPU(1, 4) || !b.chargeCPU(2, 3, false) {
		t.Fatal("setup failed")
	}
	b.release(1)
	b.release(2)
	if b.reserveUsed() != 0 || b.sharedUsed() != 0 {
		t.Errorf("pools not empty: reserve=%d shared=%d", b.reserveUsed(), b.sharedUsed())
	}
	b.release(99) // releasing unknown is a no-op
}

func TestResizeGPUJob(t *testing.T) {
	b := mustBudget(t, 10, 5)
	if !b.chargeGPU(1, 3) {
		t.Fatal("charge failed")
	}
	// Grow to 7: reserve has 2 free, shared covers 2 more.
	if !b.resize(1, 7) {
		t.Fatal("resize grow failed")
	}
	if b.reserveUsed() != 5 || b.sharedUsed() != 2 {
		t.Errorf("pools = reserve %d shared %d, want 5, 2", b.reserveUsed(), b.sharedUsed())
	}
	// Shrink to 4: shared cores returned first.
	if !b.resize(1, 4) {
		t.Fatal("resize shrink failed")
	}
	if b.reserveUsed() != 4 || b.sharedUsed() != 0 {
		t.Errorf("pools = reserve %d shared %d, want 4, 0", b.reserveUsed(), b.sharedUsed())
	}
	// Impossible growth.
	if b.resize(1, 11) {
		t.Error("resize beyond node should fail")
	}
	if b.resize(1, 0) {
		t.Error("resize to zero should fail")
	}
	if b.resize(42, 3) {
		t.Error("resize of unknown job should fail")
	}
	if err := b.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestResizeCPUJobReturnsReserveFirst(t *testing.T) {
	b := mustBudget(t, 10, 6) // 4 shared
	if !b.chargeCPU(1, 7, true) {
		t.Fatal("charge failed") // 4 shared + 3 borrowed
	}
	if !b.resize(1, 4) {
		t.Fatal("shrink failed")
	}
	// The 3 borrowed reserve cores must be returned before shared ones.
	if got := b.borrowedCores(); got != 0 {
		t.Errorf("borrowedCores = %d, want 0", got)
	}
	if b.sharedUsed() != 4 {
		t.Errorf("sharedUsed = %d, want 4", b.sharedUsed())
	}
}

func TestResizeNoChange(t *testing.T) {
	b := mustBudget(t, 10, 5)
	if !b.chargeGPU(1, 3) {
		t.Fatal("charge failed")
	}
	if !b.resize(1, 3) {
		t.Error("no-op resize should succeed")
	}
}

// TestBudgetConservationProperty: for any sequence of charges, used never
// exceeds capacity and the invariants hold.
func TestBudgetConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		b, err := newNodeBudget(16, 8)
		if err != nil {
			return false
		}
		id := job.ID(1)
		for _, op := range ops {
			cores := int(op%6) + 1
			switch op % 3 {
			case 0:
				if b.chargeGPU(id, cores) {
					id++
				}
			case 1:
				if b.chargeCPU(id, cores, op%2 == 0) {
					id++
				}
			case 2:
				if id > 1 {
					b.release(id - 1)
					id--
				}
			}
			if b.checkInvariants() != nil {
				return false
			}
			if b.reserveUsed()+b.sharedUsed() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
