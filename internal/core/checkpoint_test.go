package core

import (
	"bytes"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sim"
)

// midRunScheduler drives a service-mode simulator to a busy midpoint — jobs
// running with budget draws, a tuning session in flight, queued work, and at
// least one completion in the history log — and returns the live scheduler.
func midRunScheduler(t *testing.T, cfg Config, opts sim.Options) *Scheduler {
	t.Helper()
	opts.Service = true
	s := newCoda(t, cfg, opts)
	simulator, err := sim.New(opts, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	inject := func(j *job.Job) {
		t.Helper()
		if err := simulator.InjectArrival(j); err != nil {
			t.Fatalf("inject job %d: %v", j.ID, err)
		}
	}
	inject(gpuJob(1, 0, "resnet50", 8, 4, 1, 4*time.Hour))
	inject(gpuJob(2, 0, "bat", 6, 1, 1, 3*time.Hour))
	inject(cpuJob(3, 0, 5, 4, 5*time.Minute)) // completes before the midpoint
	if err := simulator.RunUntil(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	inject(cpuJob(4, 0, 6, 16, 2*time.Hour))
	inject(hogJob(5, 0, 8, 60, 2*time.Hour))
	if err := simulator.RunUntil(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCheckpointRoundTripMidRun is the serialization fidelity check for the
// full scheduler checkpoint: a checkpoint taken mid-run, restored into a
// freshly constructed scheduler of the same shape, must re-serialize to the
// identical bytes — history log, budget draws, sub-array split, fair-share
// accumulators, queues, allocator tuning state and eliminator interventions
// all survive the round trip verbatim.
func TestCheckpointRoundTripMidRun(t *testing.T) {
	cfg := DefaultConfig()
	opts := testOptions()
	s := midRunScheduler(t, cfg, opts)

	blob, err := s.CheckpointState()
	if err != nil {
		t.Fatalf("CheckpointState: %v", err)
	}
	fresh := newCoda(t, cfg, opts)
	if err := fresh.RestoreCheckpoint(blob); err != nil {
		t.Fatalf("RestoreCheckpoint: %v", err)
	}
	again, err := fresh.CheckpointState()
	if err != nil {
		t.Fatalf("CheckpointState after restore: %v", err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatalf("checkpoint round trip not byte-identical:\n%s", sim.FirstDiff(string(blob), string(again)))
	}
	if err := fresh.Arrays().CheckInvariants(); err != nil {
		t.Fatalf("multi-array invariants after restore: %v", err)
	}
}

// TestRestoreCheckpointRejects pins the restore-time validation: corrupt
// JSON, restoring into a scheduler that has already run, an eliminator
// configuration mismatch, and a cluster-shape mismatch are all deterministic
// errors instead of silent state corruption.
func TestRestoreCheckpointRejects(t *testing.T) {
	cfg := DefaultConfig()
	opts := testOptions()
	blob, err := midRunScheduler(t, cfg, opts).CheckpointState()
	if err != nil {
		t.Fatalf("CheckpointState: %v", err)
	}

	if err := newCoda(t, cfg, opts).RestoreCheckpoint([]byte("{not json")); err == nil {
		t.Error("restore of corrupt JSON succeeded, want error")
	}

	_, used := runCoda(t, cfg, opts, []*job.Job{cpuJob(1, 0, 2, 4, time.Minute)})
	if err := used.RestoreCheckpoint(blob); err == nil {
		t.Error("restore into a non-fresh scheduler succeeded, want error")
	}

	noElim := cfg
	noElim.DisableEliminator = true
	if err := newCoda(t, noElim, opts).RestoreCheckpoint(blob); err == nil {
		t.Error("restore across eliminator config mismatch succeeded, want error")
	}

	narrow, err := New(cfg, 2, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	if err := narrow.RestoreCheckpoint(blob); err == nil {
		t.Error("restore across cluster-shape mismatch succeeded, want error")
	}
}
