// Package job defines the job model shared by every component of the CODA
// reproduction: CPU jobs, DNN training (GPU) jobs, their resource requests,
// tenant ownership, lifecycle states, and the optional tenant-provided hints
// the paper's adaptive CPU allocator consumes (§V-B1).
package job

import (
	"fmt"
	"time"
)

// Kind distinguishes the broad job classes the cluster hosts.
type Kind int

const (
	// KindCPU is a traditional CPU-only job (inference, ETL, auxiliary work).
	KindCPU Kind = iota + 1
	// KindGPUTraining is a DNN training job that holds GPUs and CPU cores.
	KindGPUTraining
	// KindBandwidthHog is a memory-bandwidth-intensive CPU job, standing in
	// for the paper's HEAT benchmark (§IV-C2, §VI-E).
	KindBandwidthHog
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCPU:
		return "cpu"
	case KindGPUTraining:
		return "gpu-training"
	case KindBandwidthHog:
		return "bandwidth-hog"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// IsCPUOnly reports whether the kind runs without GPUs.
func (k Kind) IsCPUOnly() bool {
	return k == KindCPU || k == KindBandwidthHog
}

// Category is the DNN model domain. The paper's allocator seeds its search
// differently per category (3 cores for CV, 5 for NLP, 5 for Speech).
type Category int

const (
	// CategoryNone marks jobs that are not DNN training jobs, or training
	// jobs whose owner declined to disclose the category (§V-B1 worst case).
	CategoryNone Category = iota
	// CategoryCV is computer vision (Alexnet, VGG16, InceptionV3, Resnet-50).
	CategoryCV
	// CategoryNLP is natural-language processing (BAT, Transformer).
	CategoryNLP
	// CategorySpeech is speech recognition/synthesis (Wavenet, DeepSpeech).
	CategorySpeech
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CategoryNone:
		return "none"
	case CategoryCV:
		return "cv"
	case CategoryNLP:
		return "nlp"
	case CategorySpeech:
		return "speech"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// State is the lifecycle state of a job.
type State int

const (
	// StatePending means the job is queued, waiting for resources.
	StatePending State = iota + 1
	// StateProfiling means CODA's allocator is running profiling steps on it.
	StateProfiling
	// StateRunning means the job holds resources and is making progress.
	StateRunning
	// StateCompleted means the job finished all its work.
	StateCompleted
	// StatePreempted means a CPU job was aborted to return preempted cores
	// and re-entered the array head (§V-C); it will be rescheduled.
	StatePreempted
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateProfiling:
		return "profiling"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StatePreempted:
		return "preempted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ID identifies a job uniquely within one trace.
type ID int64

// TenantID identifies a tenant (user/party) sharing the cluster.
type TenantID int

// Hints carries the optional information a tenant may provide about a DNN
// training job (§V-B1). Each present hint adjusts the allocator's Nstart.
type Hints struct {
	// HasPipeline reports that the training script pipelines data
	// preparation with GPU compute; such jobs need one core fewer.
	HasPipeline bool
	// LargeWeights reports that the model has a large number of weights;
	// such jobs need one core fewer (more GPU time per batch).
	LargeWeights bool
	// ComplexPreprocess reports heavy per-iteration CPU preprocessing;
	// such jobs need one core more.
	ComplexPreprocess bool
}

// Request is the resource request a job arrives with. For GPU jobs the CPU
// core count is what the owner asked for; CODA's allocator may override it.
type Request struct {
	// CPUCores is the number of CPU cores requested.
	CPUCores int
	// GPUs is the number of GPUs requested (0 for CPU-only jobs).
	GPUs int
	// Nodes is the number of nodes the job spans (1 unless multi-node).
	Nodes int
}

// Validate checks internal consistency of the request.
func (r Request) Validate(kind Kind) error {
	if r.CPUCores <= 0 {
		return fmt.Errorf("request: cpu cores must be positive, got %d", r.CPUCores)
	}
	if r.Nodes <= 0 {
		return fmt.Errorf("request: nodes must be positive, got %d", r.Nodes)
	}
	if kind.IsCPUOnly() {
		if r.GPUs != 0 {
			return fmt.Errorf("request: cpu-only job cannot request %d gpus", r.GPUs)
		}
		return nil
	}
	if r.GPUs <= 0 {
		return fmt.Errorf("request: gpu job must request gpus, got %d", r.GPUs)
	}
	if r.GPUs < r.Nodes {
		return fmt.Errorf("request: %d gpus cannot span %d nodes", r.GPUs, r.Nodes)
	}
	if r.GPUs%r.Nodes != 0 {
		return fmt.Errorf("request: %d gpus not divisible across %d nodes", r.GPUs, r.Nodes)
	}
	return nil
}

// GPUsPerNode returns the per-node GPU count of the request.
func (r Request) GPUsPerNode() int {
	if r.Nodes == 0 {
		return 0
	}
	return r.GPUs / r.Nodes
}

// Job is a single unit of work submitted to the cluster.
type Job struct {
	// ID uniquely identifies the job.
	ID ID
	// Kind is the job class.
	Kind Kind
	// Tenant owns the job.
	Tenant TenantID
	// Category is the DNN domain for training jobs.
	Category Category
	// Model is the DNN model name for training jobs (must match a model
	// known to the perfmodel package), empty otherwise.
	Model string
	// BatchSize is the training batch size (0 means the model default).
	BatchSize int
	// Hints are the optional tenant-provided allocator hints.
	Hints Hints
	// Request is the arrival-time resource request.
	Request Request
	// Arrival is the submission time, as an offset from trace start.
	Arrival time.Duration
	// Work is the amount of work in seconds-at-full-speed. A GPU job running
	// at speed 0.5 needs 2*Work wall-clock seconds to finish.
	Work time.Duration
	// Bandwidth is the peak memory bandwidth in GB/s the job drives when it
	// is a CPU job; for GPU jobs the perfmodel supplies demand instead.
	Bandwidth float64
}

// Clone returns a deep copy of the job.
func (j *Job) Clone() *Job {
	cp := *j
	return &cp
}

// Validate checks the job for internal consistency.
func (j *Job) Validate() error {
	if j.ID <= 0 {
		return fmt.Errorf("job %d: id must be positive", j.ID)
	}
	if err := j.Request.Validate(j.Kind); err != nil {
		return fmt.Errorf("job %d: %w", j.ID, err)
	}
	if j.Work <= 0 {
		return fmt.Errorf("job %d: work must be positive, got %v", j.ID, j.Work)
	}
	if j.Arrival < 0 {
		return fmt.Errorf("job %d: arrival must be non-negative, got %v", j.ID, j.Arrival)
	}
	if j.Kind == KindGPUTraining {
		if j.Model == "" {
			return fmt.Errorf("job %d: training job needs a model name", j.ID)
		}
	} else {
		if j.Model != "" {
			return fmt.Errorf("job %d: cpu job cannot carry model %q", j.ID, j.Model)
		}
		if j.Category != CategoryNone {
			return fmt.Errorf("job %d: cpu job cannot carry category %v", j.ID, j.Category)
		}
	}
	if j.Kind == KindBandwidthHog && j.Bandwidth <= 0 {
		return fmt.Errorf("job %d: bandwidth hog needs positive bandwidth", j.ID)
	}
	return nil
}

// IsGPU reports whether the job holds GPUs.
func (j *Job) IsGPU() bool { return j.Kind == KindGPUTraining }

// Allocation records the resources a running job actually holds. CPUCores
// may differ from the request once CODA's allocator slims or widens it, and
// Throttled marks CPU jobs currently restrained by the eliminator.
type Allocation struct {
	// NodeIDs are the nodes hosting the job, one entry per node spanned.
	NodeIDs []int
	// CPUCores is the per-node core count actually held.
	CPUCores int
	// GPUs is the per-node GPU count actually held.
	GPUs int
	// BandwidthCap is the per-node memory-bandwidth cap in GB/s applied by
	// the contention eliminator via MBA; 0 means uncapped.
	BandwidthCap float64
	// Preemptible marks allocations (CPU jobs running on cores borrowed
	// from the GPU resource array, or vice versa) that the owner array may
	// reclaim (§V-C).
	Preemptible bool
}

// Clone returns a deep copy of the allocation.
func (a Allocation) Clone() Allocation {
	cp := a
	cp.NodeIDs = append([]int(nil), a.NodeIDs...)
	return cp
}

// TotalCPUCores returns the cluster-wide core count held.
func (a Allocation) TotalCPUCores() int { return a.CPUCores * len(a.NodeIDs) }

// TotalGPUs returns the cluster-wide GPU count held.
func (a Allocation) TotalGPUs() int { return a.GPUs * len(a.NodeIDs) }
