package job

import (
	"testing"
	"testing/quick"
	"time"
)

func validGPUJob() *Job {
	return &Job{
		ID:       1,
		Kind:     KindGPUTraining,
		Tenant:   3,
		Category: CategoryCV,
		Model:    "resnet50",
		Request:  Request{CPUCores: 4, GPUs: 1, Nodes: 1},
		Arrival:  time.Minute,
		Work:     2 * time.Hour,
	}
}

func validCPUJob() *Job {
	return &Job{
		ID:      2,
		Kind:    KindCPU,
		Tenant:  5,
		Request: Request{CPUCores: 2, Nodes: 1},
		Work:    10 * time.Minute,
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindCPU, "cpu"},
		{KindGPUTraining, "gpu-training"},
		{KindBandwidthHog, "bandwidth-hog"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestKindIsCPUOnly(t *testing.T) {
	if !KindCPU.IsCPUOnly() {
		t.Error("KindCPU should be CPU-only")
	}
	if !KindBandwidthHog.IsCPUOnly() {
		t.Error("KindBandwidthHog should be CPU-only")
	}
	if KindGPUTraining.IsCPUOnly() {
		t.Error("KindGPUTraining should not be CPU-only")
	}
}

func TestCategoryString(t *testing.T) {
	tests := []struct {
		cat  Category
		want string
	}{
		{CategoryNone, "none"},
		{CategoryCV, "cv"},
		{CategoryNLP, "nlp"},
		{CategorySpeech, "speech"},
		{Category(42), "category(42)"},
	}
	for _, tt := range tests {
		if got := tt.cat.String(); got != tt.want {
			t.Errorf("Category(%d).String() = %q, want %q", int(tt.cat), got, tt.want)
		}
	}
}

func TestStateString(t *testing.T) {
	states := map[State]string{
		StatePending:   "pending",
		StateProfiling: "profiling",
		StateRunning:   "running",
		StateCompleted: "completed",
		StatePreempted: "preempted",
		State(77):      "state(77)",
	}
	for s, want := range states {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestRequestValidate(t *testing.T) {
	tests := []struct {
		name    string
		req     Request
		kind    Kind
		wantErr bool
	}{
		{"valid cpu", Request{CPUCores: 2, Nodes: 1}, KindCPU, false},
		{"valid 1N1G", Request{CPUCores: 4, GPUs: 1, Nodes: 1}, KindGPUTraining, false},
		{"valid 2N8G", Request{CPUCores: 2, GPUs: 8, Nodes: 2}, KindGPUTraining, false},
		{"zero cores", Request{CPUCores: 0, Nodes: 1}, KindCPU, true},
		{"negative cores", Request{CPUCores: -1, Nodes: 1}, KindCPU, true},
		{"zero nodes", Request{CPUCores: 1, Nodes: 0}, KindCPU, true},
		{"cpu job with gpus", Request{CPUCores: 1, GPUs: 1, Nodes: 1}, KindCPU, true},
		{"hog with gpus", Request{CPUCores: 1, GPUs: 2, Nodes: 1}, KindBandwidthHog, true},
		{"gpu job without gpus", Request{CPUCores: 1, Nodes: 1}, KindGPUTraining, true},
		{"more nodes than gpus", Request{CPUCores: 1, GPUs: 1, Nodes: 2}, KindGPUTraining, true},
		{"gpus not divisible", Request{CPUCores: 1, GPUs: 3, Nodes: 2}, KindGPUTraining, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.req.Validate(tt.kind)
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRequestGPUsPerNode(t *testing.T) {
	tests := []struct {
		req  Request
		want int
	}{
		{Request{GPUs: 8, Nodes: 2}, 4},
		{Request{GPUs: 1, Nodes: 1}, 1},
		{Request{GPUs: 0, Nodes: 1}, 0},
		{Request{}, 0},
	}
	for _, tt := range tests {
		if got := tt.req.GPUsPerNode(); got != tt.want {
			t.Errorf("%+v.GPUsPerNode() = %d, want %d", tt.req, got, tt.want)
		}
	}
}

func TestJobValidate(t *testing.T) {
	t.Run("valid gpu job", func(t *testing.T) {
		if err := validGPUJob().Validate(); err != nil {
			t.Errorf("unexpected error: %v", err)
		}
	})
	t.Run("valid cpu job", func(t *testing.T) {
		if err := validCPUJob().Validate(); err != nil {
			t.Errorf("unexpected error: %v", err)
		}
	})

	mutations := []struct {
		name   string
		mutate func(*Job)
	}{
		{"zero id", func(j *Job) { j.ID = 0 }},
		{"negative id", func(j *Job) { j.ID = -4 }},
		{"zero work", func(j *Job) { j.Work = 0 }},
		{"negative arrival", func(j *Job) { j.Arrival = -time.Second }},
		{"missing model", func(j *Job) { j.Model = "" }},
		{"bad request", func(j *Job) { j.Request.GPUs = 0 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			j := validGPUJob()
			tt.mutate(j)
			if err := j.Validate(); err == nil {
				t.Error("expected validation error, got nil")
			}
		})
	}

	cpuMutations := []struct {
		name   string
		mutate func(*Job)
	}{
		{"cpu job with model", func(j *Job) { j.Model = "resnet50" }},
		{"cpu job with category", func(j *Job) { j.Category = CategoryNLP }},
	}
	for _, tt := range cpuMutations {
		t.Run(tt.name, func(t *testing.T) {
			j := validCPUJob()
			tt.mutate(j)
			if err := j.Validate(); err == nil {
				t.Error("expected validation error, got nil")
			}
		})
	}

	t.Run("hog needs bandwidth", func(t *testing.T) {
		j := validCPUJob()
		j.Kind = KindBandwidthHog
		if err := j.Validate(); err == nil {
			t.Error("expected error for hog without bandwidth")
		}
		j.Bandwidth = 20
		if err := j.Validate(); err != nil {
			t.Errorf("unexpected error: %v", err)
		}
	})
}

func TestJobClone(t *testing.T) {
	j := validGPUJob()
	cp := j.Clone()
	if cp == j {
		t.Fatal("Clone returned the same pointer")
	}
	cp.Model = "vgg16"
	if j.Model == "vgg16" {
		t.Error("mutating clone affected original")
	}
}

func TestAllocationClone(t *testing.T) {
	a := Allocation{NodeIDs: []int{1, 2}, CPUCores: 3, GPUs: 4}
	cp := a.Clone()
	cp.NodeIDs[0] = 99
	if a.NodeIDs[0] == 99 {
		t.Error("Clone shares NodeIDs backing array")
	}
}

func TestAllocationTotals(t *testing.T) {
	a := Allocation{NodeIDs: []int{1, 2}, CPUCores: 3, GPUs: 4}
	if got := a.TotalCPUCores(); got != 6 {
		t.Errorf("TotalCPUCores() = %d, want 6", got)
	}
	if got := a.TotalGPUs(); got != 8 {
		t.Errorf("TotalGPUs() = %d, want 8", got)
	}
	var empty Allocation
	if got := empty.TotalCPUCores(); got != 0 {
		t.Errorf("empty TotalCPUCores() = %d, want 0", got)
	}
}

// TestRequestValidatePropertyGPUDivisibility checks with testing/quick that
// any request Validate accepts for a GPU job satisfies divisibility and
// positivity invariants.
func TestRequestValidatePropertyGPUDivisibility(t *testing.T) {
	f := func(cores, gpus, nodes int8) bool {
		req := Request{CPUCores: int(cores), GPUs: int(gpus), Nodes: int(nodes)}
		if err := req.Validate(KindGPUTraining); err != nil {
			return true // rejected requests carry no obligation
		}
		return req.CPUCores > 0 && req.GPUs > 0 && req.Nodes > 0 &&
			req.GPUs%req.Nodes == 0 && req.GPUsPerNode() >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAllocationTotalsProperty checks totals always equal per-node value
// times node count.
func TestAllocationTotalsProperty(t *testing.T) {
	f := func(nodes uint8, cores, gpus uint8) bool {
		ids := make([]int, int(nodes)%16)
		for i := range ids {
			ids[i] = i
		}
		a := Allocation{NodeIDs: ids, CPUCores: int(cores), GPUs: int(gpus)}
		return a.TotalCPUCores() == int(cores)*len(ids) &&
			a.TotalGPUs() == int(gpus)*len(ids)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
