// Contention example: co-locate a bandwidth-sensitive NLP training job
// with a HEAT-style memory-bandwidth hog and show the contention
// eliminator protecting the training job (§V-D, §VI-E). The same scenario
// runs twice — eliminator on and off — to expose the difference.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func scenario() []*job.Job {
	return []*job.Job{
		// BAT: the paper's most bandwidth-sensitive model (Fig. 7 shows a
		// >= 50% performance drop under contention).
		{
			ID: 1, Kind: job.KindGPUTraining, Tenant: 1,
			Category: job.CategoryNLP, Model: "bat",
			Request: job.Request{CPUCores: 5, GPUs: 1, Nodes: 1},
			Work:    2 * time.Hour,
		},
		// A HEAT-style hog arrives 15 minutes in and drives 120 GB/s.
		{
			ID: 2, Kind: job.KindBandwidthHog, Tenant: 2,
			Request:   job.Request{CPUCores: 16, Nodes: 1},
			Arrival:   15 * time.Minute,
			Work:      3 * time.Hour,
			Bandwidth: 120,
		},
	}
}

func runOnce(eliminator bool) (*sim.Result, error) {
	opts := sim.DefaultOptions()
	opts.Cluster.Nodes = 1 // force co-location

	cfg := core.DefaultConfig()
	cfg.DisableEliminator = !eliminator
	coda, err := core.New(cfg, opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	if err != nil {
		return nil, err
	}
	simulator, err := sim.New(opts, coda, scenario())
	if err != nil {
		return nil, err
	}
	return simulator.Run()
}

func run() error {
	withElim, err := runOnce(true)
	if err != nil {
		return err
	}
	without, err := runOnce(false)
	if err != nil {
		return err
	}

	fmt.Println("scenario: BAT (1N1G) co-located with a 120 GB/s bandwidth hog")
	fmt.Printf("\n%-24s %-18s %s\n", "", "eliminator on", "eliminator off")
	fmt.Printf("%-24s %-18s %s\n", "BAT end-to-end",
		withElim.Jobs[1].EndToEnd().Truncate(time.Second),
		without.Jobs[1].EndToEnd().Truncate(time.Second))
	fmt.Printf("%-24s %-18s %s\n", "hog end-to-end",
		withElim.Jobs[2].EndToEnd().Truncate(time.Second),
		without.Jobs[2].EndToEnd().Truncate(time.Second))
	fmt.Printf("%-24s %-18d %d\n", "MBA throttle actions", withElim.Throttles, without.Throttles)

	saved := without.Jobs[1].EndToEnd() - withElim.Jobs[1].EndToEnd()
	fmt.Printf("\nthe eliminator saved the training job %s by throttling the hog's bandwidth\n",
		saved.Truncate(time.Second))
	return nil
}
