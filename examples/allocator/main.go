// Allocator example: run each of the paper's eight benchmark models under
// CODA's adaptive CPU allocator and watch the feedback search converge to
// the model's optimal core count in at most four profiling steps (§V-B,
// Table II).
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/perfmodel"
	"github.com/coda-repro/coda/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("model        category  requested  Nstart->tuned  optimal  steps")
	for _, name := range perfmodel.Names() {
		model, err := perfmodel.Lookup(name)
		if err != nil {
			return err
		}
		opt, err := model.OptimalCores(perfmodel.Config{Nodes: 1, GPUs: 1}, 0)
		if err != nil {
			return err
		}

		opts := sim.DefaultOptions()
		opts.Cluster.Nodes = 1
		coda, err := core.New(core.DefaultConfig(),
			opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
		if err != nil {
			return err
		}

		// The owner requests the cluster-typical 2 cores (§III-A: 76.1% of
		// jobs request 1-2 cores).
		j := &job.Job{
			ID: 1, Kind: job.KindGPUTraining, Tenant: 1,
			Category: model.Category, Model: name,
			Request: job.Request{CPUCores: 2, GPUs: 1, Nodes: 1},
			Work:    2 * time.Hour,
		}
		nstart := coda.Allocator().InitialCores(j)

		simulator, err := sim.New(opts, coda, []*job.Job{j})
		if err != nil {
			return err
		}
		res, err := simulator.Run()
		if err != nil {
			return err
		}
		steps, _ := coda.Allocator().ProfileSteps(1)
		fmt.Printf("%-12s %-9s %-10d %2d -> %-8d %-8d %d\n",
			name, model.Category, j.Request.CPUCores,
			nstart, res.Jobs[1].FinalCores, opt, steps)
	}
	return nil
}
