// Quickstart: build a small simulated GPU cluster, submit a mixed batch of
// DNN training jobs and CPU jobs, schedule them with CODA, and print the
// headline metrics.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An 8-node cluster with the paper's node shape (28 cores, 5 GPUs).
	opts := sim.DefaultOptions()
	opts.Cluster.Nodes = 8

	// CODA: adaptive CPU allocator + multi-array scheduler + contention
	// eliminator.
	coda, err := core.New(core.DefaultConfig(),
		opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	if err != nil {
		return err
	}

	// A mixed workload: training jobs that under- and over-request CPU
	// cores, plus CPU jobs.
	jobs := []*job.Job{
		{
			ID: 1, Kind: job.KindGPUTraining, Tenant: 1,
			Category: job.CategoryCV, Model: "resnet50",
			// The owner asked for just 1 core; CODA will find the optimum.
			Request: job.Request{CPUCores: 1, GPUs: 1, Nodes: 1},
			Work:    90 * time.Minute,
		},
		{
			ID: 2, Kind: job.KindGPUTraining, Tenant: 1,
			Category: job.CategoryNLP, Model: "transformer",
			// The owner asked for 16 cores; CODA will slim the job.
			Request: job.Request{CPUCores: 16, GPUs: 1, Nodes: 1},
			Arrival: 5 * time.Minute,
			Work:    time.Hour,
		},
		{
			ID: 3, Kind: job.KindGPUTraining, Tenant: 2,
			Category: job.CategorySpeech, Model: "wavenet",
			Request: job.Request{CPUCores: 2, GPUs: 4, Nodes: 1},
			Arrival: 10 * time.Minute,
			Work:    2 * time.Hour,
		},
		{
			ID: 4, Kind: job.KindCPU, Tenant: 3,
			Request:   job.Request{CPUCores: 4, Nodes: 1},
			Arrival:   time.Minute,
			Work:      45 * time.Minute,
			Bandwidth: 1.2,
		},
	}

	simulator, err := sim.New(opts, coda, jobs)
	if err != nil {
		return err
	}
	res, err := simulator.Run()
	if err != nil {
		return err
	}

	fmt.Println("job  model        requested  granted  queue     end-to-end")
	for id := job.ID(1); id <= 4; id++ {
		js := res.Jobs[id]
		model := js.Job.Model
		if model == "" {
			model = "(cpu job)"
		}
		fmt.Printf("%-4d %-12s %-10d %-8d %-9s %s\n",
			id, model, js.Job.Request.CPUCores, js.FinalCores,
			js.QueueTime().Truncate(time.Second),
			js.EndToEnd().Truncate(time.Second))
	}
	sm := res.Summarize()
	fmt.Printf("\ncluster: gpu util %.1f%%, gpu active %.1f%%, %d preemptions, %d throttles\n",
		sm.GPUUtil*100, sm.GPUActiveRate*100, res.Preemptions, res.Throttles)
	return nil
}
