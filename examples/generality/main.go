// Generality example (§VI-G): run CODA on a heterogeneous private cluster
// composed of GPU nodes plus dedicated CPU-only nodes. The multi-array
// scheduler keeps the two job classes from disturbing each other: CPU jobs
// flow to the CPU nodes' budget while training jobs keep the GPU nodes'
// reserve.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	opts := sim.DefaultOptions()
	opts.Cluster.Nodes = 2        // GPU nodes (IDs 0-1)
	opts.Cluster.CPUOnlyNodes = 2 // CPU nodes (IDs 2-3)

	coda, err := core.NewForCluster(core.DefaultConfig(), opts.Cluster)
	if err != nil {
		return err
	}

	jobs := []*job.Job{
		{
			ID: 1, Kind: job.KindGPUTraining, Tenant: 1,
			Category: job.CategoryCV, Model: "inception3",
			Request: job.Request{CPUCores: 2, GPUs: 2, Nodes: 1},
			Work:    time.Hour,
		},
		// Heavy CPU jobs that would crowd a GPU node's shared pool: the
		// CPU-only nodes absorb them.
		{
			ID: 2, Kind: job.KindCPU, Tenant: 2,
			Request: job.Request{CPUCores: 24, Nodes: 1},
			Work:    2 * time.Hour, Bandwidth: 6,
		},
		{
			ID: 3, Kind: job.KindCPU, Tenant: 3,
			Request: job.Request{CPUCores: 24, Nodes: 1},
			Arrival: time.Minute,
			Work:    2 * time.Hour, Bandwidth: 6,
		},
	}

	simulator, err := sim.New(opts, coda, jobs)
	if err != nil {
		return err
	}
	res, err := simulator.Run()
	if err != nil {
		return err
	}

	fmt.Println("cluster: 2 GPU nodes (0-1) + 2 CPU-only nodes (2-3)")
	fmt.Println("\njob  kind          queue  end-to-end")
	for id := job.ID(1); id <= 3; id++ {
		js := res.Jobs[id]
		fmt.Printf("%-4d %-13s %-6s %s\n", id, js.Job.Kind,
			js.QueueTime().Truncate(time.Second),
			js.EndToEnd().Truncate(time.Second))
	}
	fmt.Println("\nall three jobs ran immediately: the 24-core CPU jobs landed on the")
	fmt.Println("CPU-only nodes, leaving the GPU nodes' cores for the training job")
	return nil
}
