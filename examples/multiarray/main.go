// Multi-array example: CPU jobs burst and borrow the GPU resource array's
// reserved cores while it is idle; an arriving DNN training job reclaims
// the cores by preempting a borrower, which re-enters the CPU array head
// and finishes later (§V-C).
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	opts := sim.DefaultOptions()
	opts.Cluster.Nodes = 1
	opts.Cluster.CoresPerNode = 12
	opts.Cluster.GPUsPerNode = 2

	cfg := core.DefaultConfig()
	cfg.Array.ReserveCores = 8 // GPU array reserves 8 of 12 cores
	cfg.RebalanceEvery = 0     // keep the split fixed for the demo
	coda, err := core.New(cfg, opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	if err != nil {
		return err
	}

	jobs := []*job.Job{
		// A burst of CPU jobs: 12 cores of demand against a 4-core CPU
		// array — two of them must borrow reserved cores.
		{ID: 1, Kind: job.KindCPU, Tenant: 2, Request: job.Request{CPUCores: 4, Nodes: 1}, Work: 4 * time.Hour, Bandwidth: 1},
		{ID: 2, Kind: job.KindCPU, Tenant: 2, Request: job.Request{CPUCores: 4, Nodes: 1}, Work: 4 * time.Hour, Bandwidth: 1},
		{ID: 3, Kind: job.KindCPU, Tenant: 3, Request: job.Request{CPUCores: 4, Nodes: 1}, Work: 4 * time.Hour, Bandwidth: 1},
		// Half an hour later a training job needs its reserved cores back.
		{
			ID: 4, Kind: job.KindGPUTraining, Tenant: 1,
			Category: job.CategoryCV, Model: "resnet50",
			Request: job.Request{CPUCores: 2, GPUs: 1, Nodes: 1},
			Arrival: 30 * time.Minute,
			Work:    time.Hour,
		},
	}

	simulator, err := sim.New(opts, coda, jobs)
	if err != nil {
		return err
	}
	res, err := simulator.Run()
	if err != nil {
		return err
	}

	fmt.Println("node: 12 cores, GPU array reserves 8, CPU array owns 4")
	fmt.Println("\njob  kind          queue      end-to-end  preempted")
	for id := job.ID(1); id <= 4; id++ {
		js := res.Jobs[id]
		fmt.Printf("%-4d %-13s %-10s %-11s %d\n",
			id, js.Job.Kind,
			js.QueueTime().Truncate(time.Second),
			js.EndToEnd().Truncate(time.Second),
			js.Preemptions)
	}
	fmt.Printf("\ncross-array preemptions: %d\n", res.Preemptions)
	fmt.Println("the GPU job started immediately: CODA aborted a borrowing CPU job,")
	fmt.Println("which re-entered the CPU array head and completed after the reclaim")
	return nil
}
