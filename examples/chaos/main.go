// Chaos example: run CODA over a small generated trace while a
// deterministic fault plan crashes nodes, blinds bandwidth telemetry and
// slows stragglers — with the simulator's invariant checker validating the
// full accounting after every event. Killed jobs requeue after exponential
// backoff; past their retry budget they are terminally reported. Re-running
// the example reproduces the exact same faults, kills and requeues.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/sim"
	"github.com/coda-repro/coda/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := trace.DefaultConfig()
	cfg.CPUJobs, cfg.GPUJobs = 120, 40
	cfg.Duration = 24 * time.Hour
	cfg.Seed = 42
	jobs, err := trace.Generate(cfg)
	if err != nil {
		return err
	}

	opts := sim.DefaultOptions()
	opts.Cluster.Nodes = 8
	opts.Seed = 1
	opts.Invariants = true // validate the full accounting after every event
	opts.Faults = chaos.Plan{
		Seed:    7,
		Horizon: cfg.Duration,

		NodeCrashesPerDay: 6,
		CrashDowntime:     30 * time.Minute,

		MembwDropsPerDay:  8,
		MembwDropDuration: 10 * time.Minute,

		StragglersPerDay:  4,
		StragglerFactor:   0.5,
		StragglerDuration: time.Hour,

		JobFailureProb: 0.05,
		MaxRetries:     3,
		RetryBackoff:   time.Minute,
	}

	coda, err := core.New(core.DefaultConfig(), opts.Cluster.Nodes,
		opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	if err != nil {
		return err
	}
	simulator, err := sim.New(opts, coda, jobs)
	if err != nil {
		return err
	}
	res, err := simulator.Run()
	if err != nil {
		// An error here would mean an invariant violation — the checker
		// aborts the run at the first broken accounting identity.
		return err
	}

	completed, terminal, killedAndFinished := 0, 0, 0
	for _, js := range res.Jobs {
		switch {
		case js.Completed:
			completed++
			if js.Kills > 0 {
				killedAndFinished++
			}
		case js.TerminallyFailed:
			terminal++
		}
	}

	f := res.Faults
	fmt.Printf("workload          %d jobs over %v on %d nodes, invariant checker hot\n",
		len(jobs), cfg.Duration, opts.Cluster.Nodes)
	fmt.Printf("injected          %d node crashes, %d membw dropouts, %d stragglers\n",
		f.NodeCrashes, f.MembwDropouts, f.Stragglers)
	fmt.Printf("job kills         %d (%d injected failures), %d requeues\n",
		f.JobKills, f.JobFailures, f.Requeues)
	fmt.Printf("outcomes          %d completed (%d despite being killed), %d terminally failed\n",
		completed, killedAndFinished, terminal)
	fmt.Printf("cost of chaos     %v goodput lost, %d degraded telemetry samples\n",
		f.GoodputLost.Truncate(time.Second), f.DegradedSamples)
	fmt.Println("\nevery admitted job is accounted for: completed within its retry")
	fmt.Println("budget or terminally reported — the conservation invariant held")
	fmt.Println("after every one of the run's events.")
	return nil
}
