module github.com/coda-repro/coda

go 1.22
