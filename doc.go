// Package coda is a Go reproduction of "CODA: Improving Resource
// Utilization by Slimming and Co-locating DNN and CPU Jobs" (Zhao et al.,
// ICDCS 2020).
//
// CODA schedules multi-tenant GPU clusters that host both DNN training
// jobs and traditional CPU jobs. It is built from three cooperating parts:
//
//   - an adaptive CPU allocator that finds the just-enough core count for
//     each training job by a feedback search over observed GPU utilization
//     (internal/core.Allocator);
//   - a real-time contention eliminator that watches per-node memory
//     bandwidth and throttles CPU jobs that degrade co-located training
//     (internal/core.Eliminator);
//   - a multi-array job scheduler that partitions cluster resources into a
//     CPU array and a GPU array with 1-GPU and 4-GPU sub-arrays, runs DRF
//     inside each, and preempts cross-array borrowers on demand
//     (internal/core.MultiArray).
//
// Because the paper's physical 80-node GPU cluster is not reproducible,
// the repository ships a deterministic discrete-event simulator
// (internal/sim) driven by an analytic DNN performance model calibrated to
// the paper's own characterization study (internal/perfmodel), plus a
// synthetic trace generator matching the published workload statistics
// (internal/trace). FIFO and DRF baselines (internal/sched) run under the
// same simulated physics, and internal/experiments regenerates every table
// and figure of the paper's evaluation. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
package coda
